//! Benchmark workloads for the DySel reproduction.
//!
//! Rust reimplementations of the Parboil / Rodinia / SHOC kernels the paper
//! evaluates, each exposing the *variant axes* of the corresponding case
//! study:
//!
//! | module | paper benchmark | variant axes |
//! |---|---|---|
//! | [`sgemm`] | Parboil `sgemm` | 6 CPU schedules; tiling; SIMD widths |
//! | [`spmv_csr`] | SHOC `spmv` | scalar/vector x DFO/BFO; GPU placements |
//! | [`spmv_jds`] | Parboil `spmv` | unroll/prefetch/texture; CPU orders |
//! | [`stencil`] | Parboil `stencil` | 6 CPU schedules; z-coarsen; smem |
//! | [`cutcp`] | Parboil `cutcp` | 60 CPU schedules; GPU coarsening |
//! | [`kmeans`] | Rodinia `kmeans` | 3 CPU schedules |
//! | [`particlefilter`] | Rodinia `particlefilter` | 4 data placements |
//! | [`histogram`] | output binning (§2.3) | atomics vs privatization |
//! | [`spmv_ell`] | input format transformation (§2.3) | CSR vs ELL with duplicated inputs |
//!
//! Every kernel computes real output; [`Workload::verify`] checks it
//! against a host reference, which is what makes *productive* profiling
//! correctness machine-checkable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod csr;
mod jds;
mod suite;

pub mod cutcp;
pub mod histogram;
pub mod kmeans;
pub mod particlefilter;
pub mod sgemm;
pub mod spmv_csr;
pub mod spmv_ell;
pub mod spmv_jds;
pub mod stencil;

pub use csr::{gemm_ref, CsrMatrix};
pub use jds::JdsMatrix;
pub use suite::{check_close, Target, VerifyFn, Workload};
