//! Typed launch-lifecycle events and the shared sink that collects them.

use std::sync::{Mutex, PoisonError};

use crate::metrics::{MetricsRegistry, MetricsSnapshot};

/// Which lifecycle stage an [`Event`] records.
///
/// Device-level stages ([`Stage::Enqueue`], [`Stage::LaunchError`],
/// [`Stage::Preempt`]) are emitted from the serial pricing phase of the
/// batch launch engine; the rest are emitted by the runtime's
/// orchestration pass. Span stages carry a `[start, end)` virtual-cycle
/// interval; point stages carry a single instant (`start == end`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// A launch completed on the device: its virtual execution span.
    Enqueue,
    /// A launch failed on the device before executing anything.
    LaunchError,
    /// A launch blew its cycle budget and was cooperatively preempted.
    Preempt,
    /// A measured micro-profiling launch (runtime view).
    Profile,
    /// An eager chunk dispatched during asynchronous profiling.
    EagerChunk,
    /// The post-selection batch over the remaining workload.
    Batch,
    /// An output-validation cross-check launch.
    Validate,
    /// A dead productive slice re-executed with the winner.
    Repair,
    /// A transient launch failure was retried with backoff.
    Retry,
    /// A variant was quarantined for this signature.
    Quarantine,
    /// Micro-profiling was skipped: warm-restarted selection reused.
    WarmSkip,
    /// Micro-profiling was skipped: in-process cached selection reused.
    CacheHit,
    /// A warm-restarted selection was found stale and invalidated.
    WarmInvalidate,
    /// Selection completed: the winner for this launch.
    Select,
    /// A kernel panic was contained by lane supervision (service level).
    LanePanic,
    /// A crashed shard worker was restarted by the supervisor.
    WorkerRestart,
    /// A stream's circuit breaker tripped open.
    BreakerOpen,
    /// A stream's circuit breaker moved to half-open (probe admitted).
    BreakerHalfOpen,
    /// A stream's circuit breaker closed after a successful probe.
    BreakerClose,
    /// A submission's deadline expired before its launch started.
    DeadlineExpire,
    /// The selection journal was compacted into a checkpoint.
    JournalCompact,
    /// A statically dominated variant was pruned from (or, in audit
    /// mode, flagged for pruning in) the micro-profiling pool.
    Prune,
    /// The trained model predicted a winner for this launch (shadow or
    /// on mode); detail records the predicted variant, margin and — once
    /// the launch resolves — whether the prediction hit.
    Predict,
}

impl Stage {
    /// Stable lowercase identifier used by both exporters.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Enqueue => "enqueue",
            Stage::LaunchError => "launch-error",
            Stage::Preempt => "preempt",
            Stage::Profile => "profile",
            Stage::EagerChunk => "eager-chunk",
            Stage::Batch => "batch",
            Stage::Validate => "validate",
            Stage::Repair => "repair",
            Stage::Retry => "retry",
            Stage::Quarantine => "quarantine",
            Stage::WarmSkip => "warm-skip",
            Stage::CacheHit => "cache-hit",
            Stage::WarmInvalidate => "warm-invalidate",
            Stage::Select => "select",
            Stage::LanePanic => "lane-panic",
            Stage::WorkerRestart => "worker-restart",
            Stage::BreakerOpen => "breaker-open",
            Stage::BreakerHalfOpen => "breaker-half-open",
            Stage::BreakerClose => "breaker-close",
            Stage::DeadlineExpire => "deadline-expire",
            Stage::JournalCompact => "journal-compact",
            Stage::Prune => "prune",
            Stage::Predict => "predict",
        }
    }

    /// Whether the stage carries a meaningful `[start, end)` span (a
    /// Chrome complete event) rather than a single instant.
    pub fn is_span(self) -> bool {
        matches!(
            self,
            Stage::Enqueue
                | Stage::Profile
                | Stage::EagerChunk
                | Stage::Batch
                | Stage::Validate
                | Stage::Repair
        )
    }

    /// Whether the stage is emitted by the device models rather than the
    /// runtime (exporters use this as the event category).
    pub fn is_device(self) -> bool {
        matches!(self, Stage::Enqueue | Stage::LaunchError | Stage::Preempt)
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structured launch-lifecycle event, fully attributed.
///
/// All times are **virtual cycles** from the deterministic device models;
/// nothing here ever reads a wall clock. Fields that do not apply to a
/// stage stay at their neutral value (empty string, `None`, zero) so the
/// serialized form is stable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Emission sequence number, assigned by the sink: the canonical
    /// serial-replay order, bit-identical at any worker-thread count.
    pub seq: u64,
    /// Lifecycle stage.
    pub stage: Stage,
    /// Kernel signature (empty for device-level events, which see only
    /// the variant).
    pub signature: String,
    /// Registered variant name (empty when no single variant applies).
    pub variant: String,
    /// Device stream the work ran on, if any.
    pub stream: Option<u32>,
    /// Tenant the launch belongs to (`0` for single-tenant runtimes).
    /// Usually stamped by the sink ([`EventSink::with_tenant`]) so every
    /// emission site — runtime and device alike — attributes uniformly.
    pub tenant: u32,
    /// Span start (or the instant, for point stages), in virtual cycles.
    pub start: u64,
    /// Span end, in virtual cycles. Equals `start` for point stages.
    pub end: u64,
    /// First workload unit covered (zero when no units apply).
    pub unit_lo: u64,
    /// One past the last workload unit covered.
    pub unit_hi: u64,
    /// Free-form detail (counts, reasons); stable formatting only.
    pub detail: String,
}

impl Event {
    /// A blank event of the given stage; chain the builder methods to
    /// attribute it. The sink assigns `seq` at emission.
    pub fn new(stage: Stage) -> Self {
        Event {
            seq: 0,
            stage,
            signature: String::new(),
            variant: String::new(),
            stream: None,
            tenant: 0,
            start: 0,
            end: 0,
            unit_lo: 0,
            unit_hi: 0,
            detail: String::new(),
        }
    }

    /// Sets the kernel signature.
    pub fn signature(mut self, sig: &str) -> Self {
        self.signature = sig.to_owned();
        self
    }

    /// Sets the variant name.
    pub fn variant(mut self, name: &str) -> Self {
        self.variant = name.to_owned();
        self
    }

    /// Sets the device stream.
    pub fn stream(mut self, stream: u32) -> Self {
        self.stream = Some(stream);
        self
    }

    /// Sets the tenant explicitly (sinks created via
    /// [`EventSink::with_tenant`] stamp their default instead).
    pub fn tenant(mut self, tenant: u32) -> Self {
        self.tenant = tenant;
        self
    }

    /// Sets a `[start, end)` virtual-cycle span.
    pub fn span(mut self, start: u64, end: u64) -> Self {
        self.start = start;
        self.end = end;
        self
    }

    /// Sets a single virtual-cycle instant.
    pub fn at(mut self, t: u64) -> Self {
        self.start = t;
        self.end = t;
        self
    }

    /// Sets the covered workload-unit range.
    pub fn units(mut self, lo: u64, hi: u64) -> Self {
        self.unit_lo = lo;
        self.unit_hi = hi;
        self
    }

    /// Sets the free-form detail string.
    pub fn detail(mut self, detail: impl Into<String>) -> Self {
        self.detail = detail.into();
        self
    }
}

/// Everything the sink guards behind one lock: the ordered event log and
/// the metrics registry.
#[derive(Debug, Default)]
struct Inner {
    events: Vec<Event>,
    metrics: MetricsRegistry,
}

/// The shared event sink an observed runtime (and its device) emit into.
///
/// Install one via `RuntimeConfig::observe` (an `Arc<EventSink>`); the
/// runtime forwards it to the device so device-level and runtime-level
/// events interleave in one canonical sequence. Emission happens only on
/// the serial orchestration/pricing path, so the lock is uncontended and
/// sequence numbers are deterministic.
///
/// Equality is **identity** (pointer equality): two sinks are equal only
/// if they are the same allocation. That keeps configuration types
/// holding an `Option<Arc<EventSink>>` comparable without comparing logs.
#[derive(Debug, Default)]
pub struct EventSink {
    inner: Mutex<Inner>,
    /// Default tenant stamped onto every emitted event whose tenant is
    /// still `0` — so multi-tenant services attribute device- and
    /// runtime-level events without touching any emission site.
    tenant: u32,
}

impl EventSink {
    /// An empty sink.
    pub fn new() -> Self {
        EventSink::default()
    }

    /// An empty sink that stamps `tenant` onto every emitted event (unless
    /// the event already carries an explicit non-zero tenant).
    pub fn with_tenant(tenant: u32) -> Self {
        EventSink {
            inner: Mutex::default(),
            tenant,
        }
    }

    /// The default tenant this sink stamps (zero for plain sinks).
    pub fn tenant(&self) -> u32 {
        self.tenant
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Appends an event, assigning it the next sequence number.
    pub fn emit(&self, mut event: Event) {
        let mut inner = self.lock();
        event.seq = inner.events.len() as u64;
        if event.tenant == 0 {
            event.tenant = self.tenant;
        }
        inner.events.push(event);
    }

    /// Adds `delta` to a monotonic counter (created at zero on first
    /// touch, so a counter's presence is independent of its value).
    pub fn count(&self, name: &str, delta: u64) {
        self.lock().metrics.count(name, delta);
    }

    /// Records one observation into a fixed power-of-two-bucket histogram
    /// (created on first touch).
    pub fn record_hist(&self, name: &str, value: u64) {
        self.lock().metrics.record(name, value);
    }

    /// A copy of the event log, in emission order.
    pub fn events(&self) -> Vec<Event> {
        self.lock().events.clone()
    }

    /// Number of events emitted so far.
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// Whether nothing has been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.lock().events.is_empty()
    }

    /// A point-in-time copy of every counter and histogram.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.lock().metrics.snapshot()
    }

    /// Drops all events and metrics, restarting sequence numbers at zero
    /// — pair with `Runtime::reset()` when replaying a run.
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.events.clear();
        inner.metrics.clear();
    }
}

impl PartialEq for EventSink {
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(self, other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_is_assigned_in_emission_order() {
        let sink = EventSink::new();
        sink.emit(Event::new(Stage::Profile).variant("a"));
        sink.emit(Event::new(Stage::Batch).variant("b"));
        let evs = sink.events();
        assert_eq!(evs.len(), 2);
        assert_eq!((evs[0].seq, evs[0].variant.as_str()), (0, "a"));
        assert_eq!((evs[1].seq, evs[1].variant.as_str()), (1, "b"));
    }

    #[test]
    fn clear_restarts_sequence_numbers() {
        let sink = EventSink::new();
        sink.emit(Event::new(Stage::Profile));
        sink.count("c", 3);
        sink.clear();
        assert!(sink.is_empty());
        assert_eq!(sink.metrics_snapshot().counter("c"), 0);
        sink.emit(Event::new(Stage::Batch));
        assert_eq!(sink.events()[0].seq, 0);
    }

    #[test]
    fn sink_stamps_its_default_tenant() {
        let sink = EventSink::with_tenant(7);
        assert_eq!(sink.tenant(), 7);
        sink.emit(Event::new(Stage::Profile));
        sink.emit(Event::new(Stage::Batch).tenant(3)); // explicit wins
        let evs = sink.events();
        assert_eq!(evs[0].tenant, 7);
        assert_eq!(evs[1].tenant, 3);
        // A plain sink leaves tenants at zero.
        let plain = EventSink::new();
        plain.emit(Event::new(Stage::Profile));
        assert_eq!(plain.events()[0].tenant, 0);
    }

    #[test]
    fn equality_is_identity() {
        let a = EventSink::new();
        let b = EventSink::new();
        assert_eq!(&a, &a);
        assert_ne!(&a, &b);
    }

    #[test]
    fn builder_attributes_land() {
        let e = Event::new(Stage::Enqueue)
            .signature("spmv")
            .variant("coarse")
            .stream(3)
            .span(10, 20)
            .units(0, 512)
            .detail("groups=4");
        assert!(e.stage.is_span());
        assert!(e.stage.is_device());
        assert_eq!(e.signature, "spmv");
        assert_eq!(e.stream, Some(3));
        assert_eq!((e.start, e.end, e.unit_lo, e.unit_hi), (10, 20, 0, 512));
    }

    #[test]
    fn point_stages_are_not_spans() {
        for s in [
            Stage::LaunchError,
            Stage::Preempt,
            Stage::Retry,
            Stage::Quarantine,
            Stage::WarmSkip,
            Stage::CacheHit,
            Stage::WarmInvalidate,
            Stage::Select,
            Stage::LanePanic,
            Stage::WorkerRestart,
            Stage::BreakerOpen,
            Stage::BreakerHalfOpen,
            Stage::BreakerClose,
            Stage::DeadlineExpire,
            Stage::JournalCompact,
            Stage::Prune,
            Stage::Predict,
        ] {
            assert!(!s.is_span(), "{s} should be a point stage");
        }
    }
}
