//! Monotonic counters and fixed-bucket histograms — integer-only, so the
//! hot path never touches floating point and snapshots render
//! bit-identically across platforms.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Stable metric names. Exporters, docs and tests refer to metrics by
/// these strings; treat them as a public contract (rename = new metric).
pub mod names {
    /// DySel launches performed (one per `launch`/`launch_region` call).
    pub const LAUNCHES: &str = "dysel_launches_total";
    /// Kernel launches issued to the device across all DySel launches.
    pub const DEVICE_LAUNCHES: &str = "dysel_device_launches_total";
    /// Measured micro-profiling launches that completed.
    pub const PROFILE_LAUNCHES: &str = "dysel_profile_launches_total";
    /// Launch failures observed (including failed retries).
    pub const LAUNCH_ERRORS: &str = "dysel_launch_errors_total";
    /// Retries issued for transient launch failures.
    pub const RETRIES: &str = "dysel_retries_total";
    /// Launches cooperatively preempted by the cycle-budget subsystem.
    pub const PREEMPTIONS: &str = "dysel_preemptions_total";
    /// Variants dropped for blowing the profiling deadline.
    pub const DEADLINE_DISCARDS: &str = "dysel_deadline_discards_total";
    /// Variants caught by output validation.
    pub const VALIDATION_FAILURES: &str = "dysel_validation_failures_total";
    /// Dead productive slices re-executed with the winner.
    pub const REPAIRED_SLICES: &str = "dysel_repaired_slices_total";
    /// Variants quarantined (all reasons, all signatures).
    pub const QUARANTINES: &str = "dysel_quarantines_total";
    /// Launches that reused an in-process cached selection.
    pub const CACHE_HITS: &str = "dysel_selection_cache_hits_total";
    /// Launches that reused a warm-restarted (persisted) selection.
    pub const WARM_SKIPS: &str = "dysel_warm_skips_total";
    /// Warm-restarted selections invalidated as stale.
    pub const WARM_INVALIDATIONS: &str = "dysel_warm_invalidations_total";
    /// Sandbox leases served by recycling a pooled allocation.
    pub const SANDBOX_HITS: &str = "dysel_sandbox_pool_hits_total";
    /// Sandbox leases that required a fresh allocation.
    pub const SANDBOX_MISSES: &str = "dysel_sandbox_pool_misses_total";
    /// Bytes copied by dirty-range restores of reused sandboxes.
    pub const SANDBOX_RESTORE_BYTES: &str = "dysel_sandbox_restore_bytes_total";
    /// Verifier diagnostics dropped by the per-signature cap.
    pub const DIAG_DROPPED: &str = "dysel_diagnostics_dropped_total";
    /// Variants excluded from (or, in audit mode, flagged for exclusion
    /// from) micro-profiling by static dominance pruning.
    pub const PRUNED: &str = "dysel_pruned_variants_total";
    /// Audit-mode disagreements: a would-be-pruned variant won profiling.
    pub const PRUNE_DISAGREEMENTS: &str = "dysel_prune_disagreements_total";
    /// Prefix of the per-variant profiling-cycle histograms; full names
    /// are `dysel_profile_cycles/<signature>/<variant>` with `/` and `%`
    /// inside either component percent-escaped — build and split them
    /// with [`super::profile_cycles_key`] / [`super::parse_profile_cycles_key`],
    /// never by raw concatenation.
    pub const PROFILE_CYCLES: &str = "dysel_profile_cycles";
    /// Shadow/On-mode predictions matching the profiled (or cached) winner.
    pub const PREDICT_HITS: &str = "dysel_predict_hits_total";
    /// Shadow/On-mode predictions contradicted by the observed winner.
    pub const PREDICT_MISSES: &str = "dysel_predict_misses_total";
    /// Launches whose micro-profiling was skipped on a confident
    /// prediction (`predict=on` only).
    pub const PREDICT_SKIPS: &str = "dysel_predict_skips_total";
    /// Predicted selections invalidated and re-profiled after the drift
    /// detector saw K consecutive over-band launches.
    pub const PREDICT_DRIFT_REPROFILES: &str = "dysel_predict_drift_reprofiles_total";
    /// Launch submissions accepted by a `LaunchService` shard queue.
    pub const SERVICE_SUBMITS: &str = "dysel_service_submits_total";
    /// Submissions pushed back with typed `Busy` (shard queue full).
    pub const SERVICE_BUSY: &str = "dysel_service_busy_total";
    /// Submissions refused with typed `Rejected` (unknown signature or
    /// shutdown in progress).
    pub const SERVICE_REJECTS: &str = "dysel_service_rejects_total";
    /// Launches a `LaunchService` shard worker completed (ok or error).
    pub const SERVICE_COMPLETED: &str = "dysel_service_completed_total";
    /// Kernel panics contained by lane supervision (`catch_unwind`); each
    /// one discarded the panicking stream's lane and tripped its breaker.
    pub const SERVICE_LANE_PANICS: &str = "dysel_service_lane_panics_total";
    /// Crashed shard workers restarted by the supervisor.
    pub const SERVICE_WORKER_RESTARTS: &str = "dysel_service_worker_restarts_total";
    /// Circuit breakers tripped open (consecutive failures or a panic).
    pub const SERVICE_BREAKER_OPENS: &str = "dysel_service_breaker_opens_total";
    /// Breakers moved to half-open (cool-down elapsed; one probe admitted).
    pub const SERVICE_BREAKER_HALF_OPENS: &str = "dysel_service_breaker_half_opens_total";
    /// Breakers closed again (a probe or launch succeeded).
    pub const SERVICE_BREAKER_CLOSES: &str = "dysel_service_breaker_closes_total";
    /// Submissions fast-failed because their stream's breaker was open.
    pub const SERVICE_BREAKER_REJECTS: &str = "dysel_service_breaker_rejects_total";
    /// Submissions whose deadline expired before their launch started.
    pub const SERVICE_DEADLINE_EXPIRIES: &str = "dysel_service_deadline_expiries_total";
    /// Stuck lanes detected by the watchdog (escalated into the breaker).
    pub const SERVICE_LANE_STUCK: &str = "dysel_service_lane_stuck_total";
    /// Records appended to the selection/quarantine write-ahead journal.
    pub const SERVICE_JOURNAL_APPENDS: &str = "dysel_service_journal_appends_total";
    /// Journal compactions (checkpoint written, journal truncated).
    pub const SERVICE_JOURNAL_COMPACTIONS: &str = "dysel_service_journal_compactions_total";
    /// Journal records replayed during crash recovery at construction.
    pub const SERVICE_JOURNAL_REPLAYS: &str = "dysel_service_journal_replays_total";
}

/// Percent-escapes one key component: `%` → `%25`, `/` → `%2F`. Clean
/// components (the entire workload suite) pass through byte-identical,
/// so rendered metric text is stable for every existing signature.
fn escape_key_component(component: &str) -> String {
    if !component.contains(['%', '/']) {
        return component.to_owned();
    }
    let mut out = String::with_capacity(component.len() + 4);
    for c in component.chars() {
        match c {
            '%' => out.push_str("%25"),
            '/' => out.push_str("%2F"),
            c => out.push(c),
        }
    }
    out
}

/// Reverses [`escape_key_component`]. `None` on a malformed escape.
fn unescape_key_component(component: &str) -> Option<String> {
    if !component.contains('%') {
        return Some(component.to_owned());
    }
    let mut out = String::with_capacity(component.len());
    let mut rest = component;
    while let Some(pos) = rest.find('%') {
        out.push_str(&rest[..pos]);
        match rest.get(pos + 1..pos + 3)? {
            "25" => out.push('%'),
            "2F" => out.push('/'),
            _ => return None,
        }
        rest = &rest[pos + 3..];
    }
    out.push_str(rest);
    Some(out)
}

/// Builds the full `dysel_profile_cycles/<signature>/<variant>` histogram
/// name, escaping `/` and `%` inside either component so the key always
/// splits back into exactly two parts. For clean components the result is
/// identical to naive concatenation — rendered metric text is unchanged
/// for every signature in the suite.
pub fn profile_cycles_key(signature: &str, variant: &str) -> String {
    format!(
        "{}/{}/{}",
        names::PROFILE_CYCLES,
        escape_key_component(signature),
        escape_key_component(variant)
    )
}

/// Splits a full histogram name built by [`profile_cycles_key`] back into
/// `(signature, variant)`. `None` when the name does not carry the
/// profile-cycles prefix, has the wrong number of components (a legacy
/// raw-concatenated key with an embedded `/`), or a malformed escape.
pub fn parse_profile_cycles_key(name: &str) -> Option<(String, String)> {
    let rest = name
        .strip_prefix(names::PROFILE_CYCLES)?
        .strip_prefix('/')?;
    let mut parts = rest.split('/');
    let sig = parts.next()?;
    let variant = parts.next()?;
    if parts.next().is_some() {
        return None;
    }
    Some((
        unescape_key_component(sig)?,
        unescape_key_component(variant)?,
    ))
}

/// Bucket count: value `0` plus one bucket per possible bit length of a
/// `u64` observation.
const BUCKETS: usize = 65;

/// A fixed power-of-two-bucket histogram over `u64` observations.
///
/// Bucket `0` holds the value zero; bucket `i >= 1` holds values whose
/// bit length is `i`, i.e. `2^(i-1) <= v < 2^i`. Bounds are fixed at
/// compile time, so recording is two integer ops and snapshots from
/// different runs are always mergeable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        let idx = (64 - value.leading_zeros()) as usize;
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Non-empty buckets as `(exclusive upper bound, count)` pairs in
    /// ascending bound order. The bound of bucket `i` is `2^i` (bucket 0,
    /// holding only zeros, reports bound 1).
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (1u64 << (i as u32).min(63), c))
    }
}

/// The live registry behind an event sink: counters + histograms, keyed
/// by stable names, `BTreeMap`-ordered so rendering is canonical.
#[derive(Debug, Default)]
pub(crate) struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    pub(crate) fn count(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    pub(crate) fn record(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .record(value);
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            histograms: self.histograms.clone(),
        }
    }

    pub(crate) fn clear(&mut self) {
        self.counters.clear();
        self.histograms.clear();
    }
}

/// A point-in-time copy of the metrics registry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Monotonic counters, by stable name.
    pub counters: BTreeMap<String, u64>,
    /// Histograms, by stable name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// A counter's value; zero if it was never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A histogram, if any observation was recorded under `name`.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Canonical text rendering: one `counter <name> <value>` line per
    /// counter, then one `hist <name> count=<n> sum=<s> lt<bound>=<c>...`
    /// line per histogram, in name order. Deterministic byte-for-byte.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "counter {name} {value}");
        }
        for (name, h) in &self.histograms {
            let _ = write!(out, "hist {name} count={} sum={}", h.count(), h.sum());
            for (bound, c) in h.buckets() {
                let _ = write!(out, " lt{bound}={c}");
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut r = MetricsRegistry::default();
        r.count("a", 0);
        r.count("a", 2);
        r.count("a", 3);
        let s = r.snapshot();
        assert_eq!(s.counter("a"), 5);
        assert_eq!(s.counter("missing"), 0);
        assert!(s.counters.contains_key("a"));
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let mut h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(7);
        h.record(8);
        h.record(u64::MAX);
        assert_eq!(h.count(), 5);
        let buckets: Vec<_> = h.buckets().collect();
        // 0 -> bound 1; 1 -> bound 2; 7 -> bound 8; 8 -> bound 16;
        // u64::MAX -> top bucket (clamped bound 2^63).
        assert_eq!(
            buckets,
            vec![(1, 1), (2, 1), (8, 1), (16, 1), (1u64 << 63, 1)]
        );
    }

    #[test]
    fn render_is_canonical() {
        let mut r = MetricsRegistry::default();
        r.count("z_counter", 1);
        r.count("a_counter", 2);
        r.record("lat", 3);
        r.record("lat", 100);
        let text = r.snapshot().render();
        assert_eq!(
            text,
            "counter a_counter 2\ncounter z_counter 1\nhist lat count=2 sum=103 lt4=1 lt128=1\n"
        );
        // Rendering twice is byte-identical.
        assert_eq!(text, r.snapshot().render());
    }

    #[test]
    fn profile_cycles_key_is_stable_for_clean_signatures() {
        let key = profile_cycles_key("spmv-csr(random)", "scalar");
        assert_eq!(key, "dysel_profile_cycles/spmv-csr(random)/scalar");
        assert_eq!(
            parse_profile_cycles_key(&key),
            Some(("spmv-csr(random)".to_owned(), "scalar".to_owned()))
        );
    }

    #[test]
    fn profile_cycles_key_round_trips_slash_bearing_signatures() {
        // A signature with an embedded separator must stay unambiguous:
        // naive concatenation of "bfs/csr" + "warp/row" collides with
        // "bfs" + "csr/warp/row" and with "bfs/csr/warp" + "row".
        let key = profile_cycles_key("bfs/csr", "warp/row");
        assert_eq!(key, "dysel_profile_cycles/bfs%2Fcsr/warp%2Frow");
        assert_eq!(
            parse_profile_cycles_key(&key),
            Some(("bfs/csr".to_owned(), "warp/row".to_owned()))
        );
        // Escape characters themselves round-trip.
        let tricky = profile_cycles_key("a%2Fb", "v%");
        assert_eq!(
            parse_profile_cycles_key(&tricky),
            Some(("a%2Fb".to_owned(), "v%".to_owned()))
        );
        // Distinct (signature, variant) pairs never share a key.
        assert_ne!(
            profile_cycles_key("bfs/csr", "row"),
            profile_cycles_key("bfs", "csr/row")
        );
    }

    #[test]
    fn parse_profile_cycles_key_rejects_ambiguous_or_foreign_names() {
        // A legacy raw-concatenated key with an extra separator.
        assert_eq!(
            parse_profile_cycles_key("dysel_profile_cycles/bfs/csr/row"),
            None
        );
        // Missing components or a different metric family.
        assert_eq!(parse_profile_cycles_key("dysel_profile_cycles/solo"), None);
        assert_eq!(parse_profile_cycles_key("dysel_launches_total"), None);
        // A malformed escape sequence.
        assert_eq!(
            parse_profile_cycles_key("dysel_profile_cycles/a%zz/b"),
            None
        );
    }

    #[test]
    fn clear_empties_everything() {
        let mut r = MetricsRegistry::default();
        r.count("a", 1);
        r.record("h", 9);
        r.clear();
        assert!(r.snapshot().is_empty());
    }
}
