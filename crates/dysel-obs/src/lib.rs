//! Deterministic observability for the DySel runtime.
//!
//! DySel's value proposition is *measurement*: it micro-profiles a few
//! work-groups per variant and trusts those numbers. This crate makes the
//! measurement stream itself observable — every launch lifecycle stage
//! (enqueue, profile, validate, repair, preempt, retry, quarantine,
//! warm-skip, final batch) becomes a typed [`Event`] with stream, variant,
//! signature and virtual-cycle attribution, accompanied by a registry of
//! monotonic counters and fixed-bucket histograms (no floats anywhere near
//! the hot path).
//!
//! ## Determinism contract
//!
//! Events are ordered by the **canonical serial-replay timeline**, not
//! wall clock: the runtime and the device models emit them from their
//! serial pricing/orchestration passes, and the sink assigns sequence
//! numbers in emission order. Because that serial order is itself
//! independent of the worker-thread count (the two-phase launch engine's
//! contract), a trace is bit-identical at `--threads 1/2/8` — which makes
//! traces usable as golden test fixtures.
//!
//! ## Exporters
//!
//! * [`chrome_trace`] renders the Chrome `trace_event` JSON format — load
//!   the file in `chrome://tracing` (or Perfetto) to see the virtual-time
//!   schedule. Spans map to `"ph":"X"` complete events, point events to
//!   `"ph":"i"` instants; `ts`/`dur` are virtual cycles, `tid` is the
//!   device stream.
//! * [`jsonl`] renders one JSON object per event, one per line — the
//!   grep-friendly form the golden-trace tests compare byte-for-byte.
//!
//! The crate is a dependency-free leaf: cycle values are raw `u64`s (the
//! `Cycles` newtype lives above this crate in the dependency graph).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod export;
mod metrics;

pub use event::{Event, EventSink, Stage};
pub use export::{chrome_trace, jsonl};
pub use metrics::{
    names, parse_profile_cycles_key, profile_cycles_key, Histogram, MetricsSnapshot,
};
