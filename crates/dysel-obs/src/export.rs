//! Event-log exporters: Chrome `trace_event` JSON and JSONL.
//!
//! Both renderings are pure functions of the event list — same events,
//! same bytes — so exported traces inherit the sink's determinism
//! contract and can serve as golden test fixtures.

use crate::event::Event;

/// Escapes a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The shared `"args"` object carrying the full attribution of an event.
fn args_json(e: &Event) -> String {
    format!(
        "{{\"seq\":{},\"signature\":\"{}\",\"variant\":\"{}\",\"units\":[{},{}],\"detail\":\"{}\"}}",
        e.seq,
        esc(&e.signature),
        esc(&e.variant),
        e.unit_lo,
        e.unit_hi,
        esc(&e.detail),
    )
}

/// Renders the event log in the Chrome `trace_event` JSON format
/// (object form, `{"traceEvents":[...]}`) — loadable in
/// `chrome://tracing` and Perfetto.
///
/// Span stages become `"ph":"X"` complete events with `ts`/`dur` in
/// virtual cycles; point stages become `"ph":"i"` thread-scoped instants.
/// `pid` is the event's tenant (0 for single-tenant runtimes), so each
/// tenant's activity lands in its own process group; `tid` is the device
/// stream when known, else 0 — per-stream activity gets its own track.
pub fn chrome_trace(events: &[Event]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        let name = if e.variant.is_empty() {
            e.stage.as_str().to_owned()
        } else {
            format!("{} {}", e.stage.as_str(), esc(&e.variant))
        };
        let cat = if e.stage.is_device() {
            "device"
        } else {
            "runtime"
        };
        let tid = e.stream.unwrap_or(0);
        if e.stage.is_span() {
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{}}}",
                name,
                cat,
                e.start,
                e.end.saturating_sub(e.start),
                e.tenant,
                tid,
                args_json(e),
            ));
        } else {
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{},\"tid\":{},\"args\":{}}}",
                name,
                cat,
                e.start,
                e.tenant,
                tid,
                args_json(e),
            ));
        }
        out.push_str(if i + 1 < events.len() { ",\n" } else { "\n" });
    }
    out.push_str("]}\n");
    out
}

/// Renders the event log as JSONL: one JSON object per event, one per
/// line, in emission order — the grep-friendly golden-fixture form.
pub fn jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        let stream = match e.stream {
            Some(s) => s.to_string(),
            None => "null".to_owned(),
        };
        out.push_str(&format!(
            "{{\"seq\":{},\"stage\":\"{}\",\"signature\":\"{}\",\"variant\":\"{}\",\"tenant\":{},\"stream\":{},\"start\":{},\"end\":{},\"units\":[{},{}],\"detail\":\"{}\"}}\n",
            e.seq,
            e.stage.as_str(),
            esc(&e.signature),
            esc(&e.variant),
            e.tenant,
            stream,
            e.start,
            e.end,
            e.unit_lo,
            e.unit_hi,
            esc(&e.detail),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventSink, Stage};

    fn sample() -> Vec<Event> {
        let sink = EventSink::new();
        sink.emit(
            Event::new(Stage::Enqueue)
                .variant("coarse")
                .stream(1)
                .span(100, 250)
                .units(0, 512)
                .detail("groups=4"),
        );
        sink.emit(
            Event::new(Stage::Quarantine)
                .signature("spmv \"q\"")
                .variant("fine")
                .at(300)
                .detail("LaunchFailed"),
        );
        sink.events()
    }

    #[test]
    fn chrome_trace_has_spans_and_instants() {
        let text = chrome_trace(&sample());
        assert!(text.starts_with("{\"traceEvents\":[\n"));
        assert!(text.ends_with("]}\n"));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"dur\":150"));
        assert!(text.contains("\"ph\":\"i\""));
        assert!(text.contains("\"tid\":1"));
        // Quotes in user strings are escaped.
        assert!(text.contains("spmv \\\"q\\\""));
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let text = jsonl(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"seq\":0,\"stage\":\"enqueue\""));
        assert!(lines[1].contains("\"stage\":\"quarantine\""));
        assert!(lines[1].contains("\"stream\":null"));
    }

    #[test]
    fn empty_log_renders_valid_shells() {
        assert_eq!(chrome_trace(&[]), "{\"traceEvents\":[\n]}\n");
        assert_eq!(jsonl(&[]), "");
    }

    #[test]
    fn tenant_becomes_pid_and_jsonl_field() {
        let sink = EventSink::with_tenant(5);
        sink.emit(Event::new(Stage::Profile).variant("v"));
        let evs = sink.events();
        assert!(chrome_trace(&evs).contains("\"pid\":5"));
        assert!(jsonl(&evs).contains("\"tenant\":5"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let evs = sample();
        assert_eq!(chrome_trace(&evs), chrome_trace(&evs));
        assert_eq!(jsonl(&evs), jsonl(&evs));
    }
}
