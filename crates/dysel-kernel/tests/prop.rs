//! Property-based tests for the programming-model substrate.

use proptest::prelude::*;

use dysel_kernel::{Args, Buffer, CountingSink, GroupCtx, MemOp, Space, TraceSink, UnitRange};

proptest! {
    /// `UnitRange::groups` partitions the range exactly: every unit is
    /// covered once, groups are in order, and only the last may be short.
    #[test]
    fn groups_partition_exactly(start in 0u64..10_000, len in 0u64..10_000, per in 1u64..512) {
        let r = UnitRange::new(start, start + len);
        let parts: Vec<_> = r.groups(per).collect();
        let mut expect = start;
        for (i, (g, p)) in parts.iter().enumerate() {
            prop_assert_eq!(*g, i as u64);
            prop_assert_eq!(p.start, expect);
            prop_assert!(p.len() <= per);
            if i + 1 < parts.len() {
                prop_assert_eq!(p.len(), per);
            }
            expect = p.end;
        }
        prop_assert_eq!(expect, r.end);
        prop_assert_eq!(parts.len() as u64, len.div_ceil(per));
    }

    /// Intersection is commutative, contained in both, and idempotent.
    #[test]
    fn intersect_properties(a0 in 0u64..1000, al in 0u64..1000, b0 in 0u64..1000, bl in 0u64..1000) {
        let a = UnitRange::new(a0, a0 + al);
        let b = UnitRange::new(b0, b0 + bl);
        let i1 = a.intersect(b);
        let i2 = b.intersect(a);
        prop_assert_eq!(i1.len(), i2.len());
        prop_assert!(i1.len() <= a.len() && i1.len() <= b.len());
        prop_assert_eq!(i1.intersect(a).len(), i1.len());
        for u in i1.iter() {
            prop_assert!(a.contains(u) && b.contains(u));
        }
    }

    /// Copy-on-write isolation: writes through one clone never reach
    /// another, regardless of the write pattern.
    #[test]
    fn cow_isolation(values in proptest::collection::vec(any::<f32>(), 1..64),
                     writes in proptest::collection::vec((0usize..64, any::<f32>()), 0..32)) {
        let mut a = Args::new();
        a.push(Buffer::f32("b", values.clone(), Space::Global));
        let snapshot = a.clone();
        for (i, v) in writes {
            let idx = i % values.len();
            a.f32_mut(0).unwrap()[idx] = v;
        }
        // The snapshot still sees the original data bit-for-bit.
        for (orig, snap) in values.iter().zip(snapshot.f32(0).unwrap()) {
            prop_assert_eq!(orig.to_bits(), snap.to_bits());
        }
    }

    /// Sandbox views isolate exactly the listed arguments and share the
    /// rest (addresses prove sharing).
    #[test]
    fn sandbox_isolates_only_outputs(n_args in 1usize..6, outputs in proptest::collection::vec(0usize..6, 0..6)) {
        let mut a = Args::new();
        for i in 0..n_args {
            a.push(Buffer::f32(format!("b{i}"), vec![0.0; 8], Space::Global));
        }
        let outputs: Vec<usize> = outputs.into_iter().filter(|&i| i < n_args).collect();
        let sb = a.sandbox_view(&outputs).unwrap();
        for i in 0..n_args {
            let same_addr = sb.buffer(i).unwrap().addr() == a.buffer(i).unwrap().addr();
            prop_assert_eq!(same_addr, !outputs.contains(&i), "arg {}", i);
        }
    }

    /// The counting sink's byte accounting matches the descriptor contents
    /// for any mix of operations.
    #[test]
    fn counting_sink_accounting(lanes in 1u32..64, count in 1u64..512, stride in -64i64..64) {
        let mut s = CountingSink::default();
        s.mem(&MemOp::Warp { space: Space::Global, base: 4096, stride: 4, lanes, elem: 4, store: false });
        s.mem(&MemOp::Stream { space: Space::Global, base: 0, count, stride, elem: 4, store: true });
        prop_assert_eq!(s.accesses, u64::from(lanes) + count);
        prop_assert_eq!(s.bytes, u64::from(lanes) * 4 + count * 4);
        prop_assert_eq!(s.stores, 1);
        prop_assert_eq!(s.mem_ops, 2);
    }

    /// Swap round-trips: adopting outputs twice restores the original
    /// payloads.
    #[test]
    fn adopt_outputs_is_an_involution(a_vals in proptest::collection::vec(any::<f32>(), 4..16),
                                      b_vals in proptest::collection::vec(any::<f32>(), 4..16)) {
        let size = a_vals.len().min(b_vals.len());
        let mut a = Args::new();
        a.push(Buffer::f32("out", a_vals[..size].to_vec(), Space::Global));
        let mut b = Args::new();
        b.push(Buffer::f32("out", b_vals[..size].to_vec(), Space::Global));
        let orig_a: Vec<u32> = a.f32(0).unwrap().iter().map(|v| v.to_bits()).collect();
        a.adopt_outputs(&mut b, &[0]).unwrap();
        a.adopt_outputs(&mut b, &[0]).unwrap();
        let back: Vec<u32> = a.f32(0).unwrap().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(orig_a, back);
    }
}

/// Address translation in `GroupCtx` is linear in the element index.
#[test]
fn ctx_translation_is_linear() {
    struct Probe(Vec<u64>);
    impl TraceSink for Probe {
        fn mem(&mut self, op: &MemOp) {
            if let MemOp::Gather { addrs, .. } = op {
                self.0.extend(addrs);
            }
        }
        fn compute(&mut self, _: u64) {}
    }
    let mut a = Args::new();
    a.push(Buffer::f32("x", vec![0.0; 128], Space::Global));
    let base = a.buffer(0).unwrap().addr();
    let mut probe = Probe(Vec::new());
    let mut ctx = GroupCtx::new(0, UnitRange::new(0, 1), 32, &a, &[], &mut probe);
    ctx.gather(0, &[0, 1, 2, 50, 127]);
    assert_eq!(probe.0, vec![base, base + 4, base + 8, base + 200, base + 508]);
}
