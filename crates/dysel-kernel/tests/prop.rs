//! Randomized property tests for the programming-model substrate.
//!
//! Gated behind the dep-less `proptest` cargo feature and driven by the
//! in-tree [`XorShiftRng`], so the default build stays offline-green:
//! `cargo test -p dysel-kernel --features proptest`.
#![cfg(feature = "proptest")]

use dysel_kernel::{
    Args, Buffer, CountingSink, GroupCtx, MemOp, Space, TraceSink, UnitRange, XorShiftRng,
};

const CASES: u64 = 64;

fn rng_for(test: u64, case: u64) -> XorShiftRng {
    XorShiftRng::seed_from_u64(0xD75E_1000 + test * 1_000_003 + case)
}

fn arb_f32(rng: &mut XorShiftRng) -> f32 {
    f32::from_bits(rng.next_u64() as u32)
}

/// `UnitRange::groups` partitions the range exactly: every unit is covered
/// once, groups are in order, and only the last may be short.
#[test]
fn groups_partition_exactly() {
    for case in 0..CASES {
        let mut rng = rng_for(1, case);
        let start = rng.gen_range_u64(0, 10_000);
        let len = rng.gen_range_u64(0, 10_000);
        let per = rng.gen_range_u64(1, 512);
        let r = UnitRange::new(start, start + len);
        let parts: Vec<_> = r.groups(per).collect();
        let mut expect = start;
        for (i, (g, p)) in parts.iter().enumerate() {
            assert_eq!(*g, i as u64);
            assert_eq!(p.start, expect);
            assert!(p.len() <= per);
            if i + 1 < parts.len() {
                assert_eq!(p.len(), per);
            }
            expect = p.end;
        }
        assert_eq!(expect, r.end);
        assert_eq!(parts.len() as u64, len.div_ceil(per));
    }
}

/// Intersection is commutative, contained in both, and idempotent.
#[test]
fn intersect_properties() {
    for case in 0..CASES {
        let mut rng = rng_for(2, case);
        let a0 = rng.gen_range_u64(0, 1000);
        let al = rng.gen_range_u64(0, 1000);
        let b0 = rng.gen_range_u64(0, 1000);
        let bl = rng.gen_range_u64(0, 1000);
        let a = UnitRange::new(a0, a0 + al);
        let b = UnitRange::new(b0, b0 + bl);
        let i1 = a.intersect(b);
        let i2 = b.intersect(a);
        assert_eq!(i1.len(), i2.len());
        assert!(i1.len() <= a.len() && i1.len() <= b.len());
        assert_eq!(i1.intersect(a).len(), i1.len());
        for u in i1.iter() {
            assert!(a.contains(u) && b.contains(u));
        }
    }
}

/// Copy-on-write isolation: writes through one clone never reach another,
/// regardless of the write pattern.
#[test]
fn cow_isolation() {
    for case in 0..CASES {
        let mut rng = rng_for(3, case);
        let n = rng.gen_range_usize(1, 64);
        let values: Vec<f32> = (0..n).map(|_| arb_f32(&mut rng)).collect();
        let writes: Vec<(usize, f32)> = (0..rng.gen_range_usize(0, 32))
            .map(|_| (rng.gen_range_usize(0, 64), arb_f32(&mut rng)))
            .collect();
        let mut a = Args::new();
        a.push(Buffer::f32("b", values.clone(), Space::Global));
        let snapshot = a.clone();
        for (i, v) in writes {
            let idx = i % values.len();
            a.f32_mut(0).unwrap()[idx] = v;
        }
        // The snapshot still sees the original data bit-for-bit.
        for (orig, snap) in values.iter().zip(snapshot.f32(0).unwrap()) {
            assert_eq!(orig.to_bits(), snap.to_bits());
        }
    }
}

/// Sandbox views isolate exactly the listed arguments and share the rest
/// (addresses prove sharing).
#[test]
fn sandbox_isolates_only_outputs() {
    for case in 0..CASES {
        let mut rng = rng_for(4, case);
        let n_args = rng.gen_range_usize(1, 6);
        let outputs: Vec<usize> = (0..rng.gen_range_usize(0, 6))
            .map(|_| rng.gen_range_usize(0, 6))
            .filter(|&i| i < n_args)
            .collect();
        let mut a = Args::new();
        for i in 0..n_args {
            a.push(Buffer::f32(format!("b{i}"), vec![0.0; 8], Space::Global));
        }
        let sb = a.sandbox_view(&outputs).unwrap();
        for i in 0..n_args {
            let same_addr = sb.buffer(i).unwrap().addr() == a.buffer(i).unwrap().addr();
            assert_eq!(same_addr, !outputs.contains(&i), "arg {i}");
        }
    }
}

/// The counting sink's byte accounting matches the descriptor contents for
/// any mix of operations.
#[test]
fn counting_sink_accounting() {
    for case in 0..CASES {
        let mut rng = rng_for(5, case);
        let lanes = rng.gen_range_u32(1, 64);
        let count = rng.gen_range_u64(1, 512);
        let stride = rng.gen_range_u64(0, 128) as i64 - 64;
        let mut s = CountingSink::default();
        s.mem(&MemOp::Warp {
            space: Space::Global,
            base: 4096,
            stride: 4,
            lanes,
            elem: 4,
            store: false,
        });
        s.mem(&MemOp::Stream {
            space: Space::Global,
            base: 0,
            count,
            stride,
            elem: 4,
            store: true,
        });
        assert_eq!(s.accesses, u64::from(lanes) + count);
        assert_eq!(s.bytes, u64::from(lanes) * 4 + count * 4);
        assert_eq!(s.stores, 1);
        assert_eq!(s.mem_ops, 2);
    }
}

/// Swap round-trips: adopting outputs twice restores the original payloads.
#[test]
fn adopt_outputs_is_an_involution() {
    for case in 0..CASES {
        let mut rng = rng_for(6, case);
        let na = rng.gen_range_usize(4, 16);
        let nb = rng.gen_range_usize(4, 16);
        let a_vals: Vec<f32> = (0..na).map(|_| arb_f32(&mut rng)).collect();
        let b_vals: Vec<f32> = (0..nb).map(|_| arb_f32(&mut rng)).collect();
        let size = a_vals.len().min(b_vals.len());
        let mut a = Args::new();
        a.push(Buffer::f32("out", a_vals[..size].to_vec(), Space::Global));
        let mut b = Args::new();
        b.push(Buffer::f32("out", b_vals[..size].to_vec(), Space::Global));
        let orig_a: Vec<u32> = a.f32(0).unwrap().iter().map(|v| v.to_bits()).collect();
        a.adopt_outputs(&mut b, &[0]).unwrap();
        a.adopt_outputs(&mut b, &[0]).unwrap();
        let back: Vec<u32> = a.f32(0).unwrap().iter().map(|v| v.to_bits()).collect();
        assert_eq!(orig_a, back);
    }
}

/// Merging span snapshots reproduces direct writes: overwrite semantics
/// for disjoint writers, additive semantics for overlapping accumulators,
/// for any write pattern.
#[test]
fn merge_outputs_matches_direct_execution() {
    for case in 0..CASES {
        let mut rng = rng_for(7, case);
        let n = rng.gen_range_usize(4, 64);
        let base: Vec<u32> = (0..n).map(|_| rng.gen_range_u32(0, 100)).collect();
        let mut target = Args::new();
        target.push(Buffer::u32("h", base.clone(), Space::Global));
        let pristine = target.clone();
        // Two spans each increment a random subset (overlaps allowed).
        let mut expect = base.clone();
        let mut spans = Vec::new();
        for _ in 0..2 {
            let mut span = pristine.clone();
            for _ in 0..rng.gen_range_usize(0, n) {
                let i = rng.gen_range_usize(0, n);
                let d = rng.gen_range_u32(1, 5);
                span.u32_mut(0).unwrap()[i] = span.u32(0).unwrap()[i].wrapping_add(d);
                expect[i] = expect[i].wrapping_add(d);
            }
            spans.push(span);
        }
        for span in &spans {
            target.merge_outputs(span, &pristine, &[0], true).unwrap();
        }
        assert_eq!(target.u32(0).unwrap(), &expect[..]);
    }
}

/// Address translation in `GroupCtx` is linear in the element index.
#[test]
fn ctx_translation_is_linear() {
    struct Probe(Vec<u64>);
    impl TraceSink for Probe {
        fn mem(&mut self, op: &MemOp) {
            if let MemOp::Gather { addrs, .. } = op {
                self.0.extend(addrs);
            }
        }
        fn compute(&mut self, _: u64) {}
    }
    let mut a = Args::new();
    a.push(Buffer::f32("x", vec![0.0; 128], Space::Global));
    let base = a.buffer(0).unwrap().addr();
    let mut probe = Probe(Vec::new());
    let mut ctx = GroupCtx::new(0, UnitRange::new(0, 1), 32, &a, &[], &mut probe);
    ctx.gather(0, &[0, 1, 2, 50, 127]);
    assert_eq!(
        probe.0,
        vec![base, base + 4, base + 8, base + 200, base + 508]
    );
}
