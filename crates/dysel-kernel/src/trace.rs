//! Cost traces emitted by executing work-groups.
//!
//! Kernels compute real results through [`crate::Args`] and, in parallel,
//! describe *what the hardware would have done* through batched memory-op
//! descriptors. Device timing models implement [`TraceSink`] and price the
//! descriptors as they arrive, so no trace is ever materialized — except
//! by [`RecordingSink`], which captures a replayable [`RecordedTrace`] for
//! the two-phase launch engine.
//!
//! ## Allocation discipline
//!
//! The recording path is the launch engine's hottest loop (a gather-heavy
//! workload emits one descriptor per non-zero), so the trace layer is
//! designed to stay off the allocator:
//!
//! * [`TraceSink::gather`] passes per-lane addresses as a borrowed slice;
//!   sinks price or copy it without ever building an owned [`MemOp`];
//! * [`TraceEvent`] is a compact `Copy` record — gathers store an
//!   `(offset, len)` window into the trace's shared address pool instead
//!   of a per-event `Vec`;
//! * [`RecordedTrace`] is reusable: [`RecordedTrace::clear`] keeps the
//!   event and address capacity, so the engine can recycle span traces
//!   across launches through an arena instead of reallocating them.

use crate::Space;

/// One batched memory operation, as seen by a device timing model.
///
/// Addresses are in *bytes* in the flat virtual address space managed by
/// [`crate::Buffer`]; `elem` is the element size in bytes. A "warp" op
/// describes what one SIMD/warp issue slot does across its lanes; a
/// "stream" op summarizes a sequential per-work-item loop.
#[derive(Debug, Clone, PartialEq)]
pub enum MemOp {
    /// `lanes` lanes access consecutive-strided elements:
    /// lane `l` touches byte address `base + l * stride`.
    /// `stride` and `base` are in bytes. The classic coalescing shape.
    Warp {
        /// Memory space being accessed.
        space: Space,
        /// Byte address touched by lane 0.
        base: u64,
        /// Byte distance between consecutive lanes.
        stride: i64,
        /// Number of active lanes.
        lanes: u32,
        /// Element size in bytes.
        elem: u32,
        /// Whether this is a store.
        store: bool,
    },
    /// Each active lane accesses its own arbitrary byte address
    /// (data-dependent gather/scatter).
    Gather {
        /// Memory space being accessed.
        space: Space,
        /// Byte addresses, one per active lane.
        addrs: Vec<u64>,
        /// Element size in bytes.
        elem: u32,
        /// Whether this is a store (scatter).
        store: bool,
    },
    /// `repeat` back-to-back warp accesses with identical lane shape: the
    /// k-th access has lane 0 at `base + k * step` (a batched inner loop,
    /// e.g. the k-loop of a dense kernel). Costing treats each step like a
    /// [`MemOp::Warp`] with the same stride and lane count.
    WarpSeq {
        /// Memory space being accessed.
        space: Space,
        /// Byte address touched by lane 0 of the first access.
        base: u64,
        /// Byte distance between consecutive lanes.
        stride: i64,
        /// Number of active lanes.
        lanes: u32,
        /// Element size in bytes.
        elem: u32,
        /// Whether this is a store.
        store: bool,
        /// Number of accesses in the sequence.
        repeat: u32,
        /// Byte advance of lane 0 between consecutive accesses.
        step: i64,
    },
    /// One work-item streams `count` elements starting at `base`, advancing
    /// `stride` bytes per element (sequential CPU-style loop).
    Stream {
        /// Memory space being accessed.
        space: Space,
        /// Starting byte address.
        base: u64,
        /// Number of elements accessed.
        count: u64,
        /// Byte distance between consecutive accesses.
        stride: i64,
        /// Element size in bytes.
        elem: u32,
        /// Whether this is a store.
        store: bool,
    },
    /// `lanes` lanes perform a read-modify-write on the same or nearby
    /// locations; the device serializes contended lanes.
    Atomic {
        /// Memory space being accessed.
        space: Space,
        /// Byte address of the contended word.
        base: u64,
        /// Number of participating lanes.
        lanes: u32,
        /// Number of *distinct* words touched (1 = full contention).
        distinct: u32,
    },
    /// Scratchpad access with an explicit bank-conflict degree
    /// (`conflict = 1` means conflict-free).
    Scratchpad {
        /// Number of active lanes.
        lanes: u32,
        /// Max number of lanes hitting the same bank.
        conflict: u32,
        /// Whether this is a store.
        store: bool,
    },
}

impl MemOp {
    /// Number of element accesses this descriptor represents.
    pub fn accesses(&self) -> u64 {
        match self {
            MemOp::Warp { lanes, .. } => u64::from(*lanes),
            MemOp::WarpSeq { lanes, repeat, .. } => u64::from(*lanes) * u64::from(*repeat),
            MemOp::Gather { addrs, .. } => addrs.len() as u64,
            MemOp::Stream { count, .. } => *count,
            MemOp::Atomic { lanes, .. } => u64::from(*lanes),
            MemOp::Scratchpad { lanes, .. } => u64::from(*lanes),
        }
    }

    /// Bytes moved by this descriptor (0 for pure atomics' payload is
    /// counted as one element per lane).
    pub fn bytes(&self) -> u64 {
        match self {
            MemOp::Warp { lanes, elem, .. } => u64::from(*lanes) * u64::from(*elem),
            MemOp::WarpSeq {
                lanes,
                elem,
                repeat,
                ..
            } => u64::from(*lanes) * u64::from(*elem) * u64::from(*repeat),
            MemOp::Gather { addrs, elem, .. } => addrs.len() as u64 * u64::from(*elem),
            MemOp::Stream { count, elem, .. } => count * u64::from(*elem),
            MemOp::Atomic { lanes, .. } => u64::from(*lanes) * 4,
            MemOp::Scratchpad { lanes, .. } => u64::from(*lanes) * 4,
        }
    }

    /// Whether this is a store-side operation.
    pub fn is_store(&self) -> bool {
        match self {
            MemOp::Warp { store, .. }
            | MemOp::WarpSeq { store, .. }
            | MemOp::Gather { store, .. }
            | MemOp::Stream { store, .. }
            | MemOp::Scratchpad { store, .. } => *store,
            MemOp::Atomic { .. } => true,
        }
    }
}

/// Consumer of a work-group's cost trace. Implemented by the device models.
pub trait TraceSink {
    /// A batched memory operation was issued.
    fn mem(&mut self, op: &MemOp);

    /// A data-dependent gather (`store == false`) or scatter
    /// (`store == true`): each active lane accesses its own byte address.
    ///
    /// This is the allocation-free twin of [`MemOp::Gather`]: the emitter
    /// keeps ownership of the address slice, so hot sinks (recorders, cost
    /// models) can consume it without an owned `Vec` ever being built. The
    /// default forwards to [`TraceSink::mem`] for sinks that only pattern
    /// match on `MemOp`.
    fn gather(&mut self, space: Space, addrs: &[u64], elem: u32, store: bool) {
        self.mem(&MemOp::Gather {
            space,
            addrs: addrs.to_vec(),
            elem,
            store,
        });
    }

    /// `ops` scalar arithmetic operations were executed.
    fn compute(&mut self, ops: u64);

    /// `iters` iterations of a SIMD/vector loop executed with `active`
    /// useful lanes out of `width` (CPU vectorization model; divergence
    /// masking overhead grows with `width`, §1/Fig. 1 of the paper).
    fn vector_compute(&mut self, iters: u64, width: u32, active: u32, ops_per_iter: u64) {
        // Default: price as scalar work for sinks without a SIMD model.
        let _ = (width, active);
        self.compute(iters.saturating_mul(ops_per_iter));
    }

    /// Work-group barrier.
    fn barrier(&mut self) {}
}

/// One recorded trace event: a compact, `Copy` mirror of the sink calls.
///
/// Gather address lists live in the owning [`RecordedTrace`]'s shared
/// address pool; the event stores only an `(offset, len)` window into it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A strided warp access; see [`MemOp::Warp`].
    Warp {
        /// Memory space being accessed.
        space: Space,
        /// Byte address touched by lane 0.
        base: u64,
        /// Byte distance between consecutive lanes.
        stride: i64,
        /// Number of active lanes.
        lanes: u32,
        /// Element size in bytes.
        elem: u32,
        /// Whether this is a store.
        store: bool,
    },
    /// A gather/scatter; addresses are `addrs[offset..offset + len]` of the
    /// owning trace's address pool.
    Gather {
        /// Memory space being accessed.
        space: Space,
        /// Start of the address window in the trace's pool.
        offset: u32,
        /// Number of active lanes.
        len: u32,
        /// Element size in bytes.
        elem: u32,
        /// Whether this is a store (scatter).
        store: bool,
    },
    /// A repeated warp access sequence; see [`MemOp::WarpSeq`].
    WarpSeq {
        /// Memory space being accessed.
        space: Space,
        /// Byte address touched by lane 0 of the first access.
        base: u64,
        /// Byte distance between consecutive lanes.
        stride: i64,
        /// Number of active lanes.
        lanes: u32,
        /// Element size in bytes.
        elem: u32,
        /// Whether this is a store.
        store: bool,
        /// Number of accesses in the sequence.
        repeat: u32,
        /// Byte advance of lane 0 between consecutive accesses.
        step: i64,
    },
    /// A sequential stream; see [`MemOp::Stream`].
    Stream {
        /// Memory space being accessed.
        space: Space,
        /// Starting byte address.
        base: u64,
        /// Number of elements accessed.
        count: u64,
        /// Byte distance between consecutive accesses.
        stride: i64,
        /// Element size in bytes.
        elem: u32,
        /// Whether this is a store.
        store: bool,
    },
    /// An atomic RMW; see [`MemOp::Atomic`].
    Atomic {
        /// Memory space being accessed.
        space: Space,
        /// Byte address of the contended word.
        base: u64,
        /// Number of participating lanes.
        lanes: u32,
        /// Number of *distinct* words touched.
        distinct: u32,
    },
    /// A scratchpad access; see [`MemOp::Scratchpad`].
    Scratchpad {
        /// Number of active lanes.
        lanes: u32,
        /// Max number of lanes hitting the same bank.
        conflict: u32,
        /// Whether this is a store.
        store: bool,
    },
    /// Scalar compute ops.
    Compute(u64),
    /// A SIMD/vector loop: `(iters, width, active, ops_per_iter)`.
    VectorCompute(u64, u32, u32, u64),
    /// A work-group barrier.
    Barrier,
}

/// A borrowed view of one work-group's slice of a [`RecordedTrace`]: the
/// group's events plus the trace-wide address pool its gathers index into.
#[derive(Debug, Clone, Copy)]
pub struct TraceView<'a> {
    events: &'a [TraceEvent],
    addrs: &'a [u64],
}

impl<'a> TraceView<'a> {
    /// Number of events in the view.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the view holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The address window of a gather event.
    pub fn gather_addrs(&self, offset: u32, len: u32) -> &'a [u64] {
        &self.addrs[offset as usize..offset as usize + len as usize]
    }

    /// Feeds every event of the view into `sink`, in recording order.
    ///
    /// Gathers replay through [`TraceSink::gather`] with a pool slice, so a
    /// replay allocates nothing regardless of how the sink consumes it.
    pub fn replay(&self, sink: &mut dyn TraceSink) {
        for ev in self.events {
            match *ev {
                TraceEvent::Warp {
                    space,
                    base,
                    stride,
                    lanes,
                    elem,
                    store,
                } => sink.mem(&MemOp::Warp {
                    space,
                    base,
                    stride,
                    lanes,
                    elem,
                    store,
                }),
                TraceEvent::Gather {
                    space,
                    offset,
                    len,
                    elem,
                    store,
                } => sink.gather(space, self.gather_addrs(offset, len), elem, store),
                TraceEvent::WarpSeq {
                    space,
                    base,
                    stride,
                    lanes,
                    elem,
                    store,
                    repeat,
                    step,
                } => sink.mem(&MemOp::WarpSeq {
                    space,
                    base,
                    stride,
                    lanes,
                    elem,
                    store,
                    repeat,
                    step,
                }),
                TraceEvent::Stream {
                    space,
                    base,
                    count,
                    stride,
                    elem,
                    store,
                } => sink.mem(&MemOp::Stream {
                    space,
                    base,
                    count,
                    stride,
                    elem,
                    store,
                }),
                TraceEvent::Atomic {
                    space,
                    base,
                    lanes,
                    distinct,
                } => sink.mem(&MemOp::Atomic {
                    space,
                    base,
                    lanes,
                    distinct,
                }),
                TraceEvent::Scratchpad {
                    lanes,
                    conflict,
                    store,
                } => sink.mem(&MemOp::Scratchpad {
                    lanes,
                    conflict,
                    store,
                }),
                TraceEvent::Compute(ops) => sink.compute(ops),
                TraceEvent::VectorCompute(iters, width, active, ops) => {
                    sink.vector_compute(iters, width, active, ops)
                }
                TraceEvent::Barrier => sink.barrier(),
            }
        }
    }
}

/// The cost trace of one or more work-groups, captured by a
/// [`RecordingSink`].
///
/// Recorded traces are what lets the parallel executor split a launch into
/// two phases: worker threads run the kernels functionally and *record*
/// their traces, then a single serial pass replays every trace in canonical
/// work-group order against the stateful device cost models — so the priced
/// timeline is bit-identical no matter how many workers executed phase one.
///
/// A trace can hold several groups back to back (one span's worth): the
/// recorder marks group boundaries with [`RecordingSink::end_group`] and
/// the pricing pass walks them with [`RecordedTrace::groups`]. Events live
/// in one flat buffer and gather addresses in one shared pool, so a span's
/// recording costs two amortized allocations total — and zero once the
/// trace is recycled through [`RecordedTrace::clear`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecordedTrace {
    events: Vec<TraceEvent>,
    addrs: Vec<u64>,
    /// End offset (exclusive) of each closed group in `events`.
    group_ends: Vec<u32>,
}

impl RecordedTrace {
    /// Number of recorded events (all groups).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of closed groups ([`RecordingSink::end_group`] calls).
    pub fn group_count(&self) -> usize {
        self.group_ends.len()
    }

    /// Drops all recorded content but keeps the allocated capacity, so the
    /// trace can be reused for another span without touching the allocator.
    pub fn clear(&mut self) {
        self.events.clear();
        self.addrs.clear();
        self.group_ends.clear();
    }

    /// A view over the whole trace (all groups plus any open tail).
    pub fn view(&self) -> TraceView<'_> {
        TraceView {
            events: &self.events,
            addrs: &self.addrs,
        }
    }

    /// Views over the closed groups, in recording order.
    pub fn groups(&self) -> impl Iterator<Item = TraceView<'_>> + '_ {
        let mut start = 0usize;
        self.group_ends.iter().map(move |&end| {
            let v = TraceView {
                events: &self.events[start..end as usize],
                addrs: &self.addrs,
            };
            start = end as usize;
            v
        })
    }

    /// Feeds every recorded event into `sink`, in recording order.
    pub fn replay(&self, sink: &mut dyn TraceSink) {
        self.view().replay(sink);
    }
}

/// A sink that materializes the trace instead of pricing it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecordingSink {
    trace: RecordedTrace,
}

impl RecordingSink {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        RecordingSink::default()
    }

    /// Creates a recorder that records into `trace`'s existing buffers
    /// (cleared first) — the arena path: a recycled trace records a fresh
    /// span without new allocations.
    pub fn reusing(mut trace: RecordedTrace) -> Self {
        trace.clear();
        RecordingSink { trace }
    }

    /// Closes the current group: events recorded since the last boundary
    /// form one work-group's trace in [`RecordedTrace::groups`] order.
    pub fn end_group(&mut self) {
        self.trace.group_ends.push(self.trace.events.len() as u32);
    }

    /// Consumes the recorder, yielding the captured trace.
    pub fn into_trace(self) -> RecordedTrace {
        self.trace
    }
}

impl TraceSink for RecordingSink {
    fn mem(&mut self, op: &MemOp) {
        let ev = match *op {
            MemOp::Warp {
                space,
                base,
                stride,
                lanes,
                elem,
                store,
            } => TraceEvent::Warp {
                space,
                base,
                stride,
                lanes,
                elem,
                store,
            },
            MemOp::Gather {
                space,
                ref addrs,
                elem,
                store,
            } => {
                self.gather(space, addrs, elem, store);
                return;
            }
            MemOp::WarpSeq {
                space,
                base,
                stride,
                lanes,
                elem,
                store,
                repeat,
                step,
            } => TraceEvent::WarpSeq {
                space,
                base,
                stride,
                lanes,
                elem,
                store,
                repeat,
                step,
            },
            MemOp::Stream {
                space,
                base,
                count,
                stride,
                elem,
                store,
            } => TraceEvent::Stream {
                space,
                base,
                count,
                stride,
                elem,
                store,
            },
            MemOp::Atomic {
                space,
                base,
                lanes,
                distinct,
            } => TraceEvent::Atomic {
                space,
                base,
                lanes,
                distinct,
            },
            MemOp::Scratchpad {
                lanes,
                conflict,
                store,
            } => TraceEvent::Scratchpad {
                lanes,
                conflict,
                store,
            },
        };
        self.trace.events.push(ev);
    }

    fn gather(&mut self, space: Space, addrs: &[u64], elem: u32, store: bool) {
        let offset = self.trace.addrs.len() as u32;
        self.trace.addrs.extend_from_slice(addrs);
        self.trace.events.push(TraceEvent::Gather {
            space,
            offset,
            len: addrs.len() as u32,
            elem,
            store,
        });
    }

    fn compute(&mut self, ops: u64) {
        self.trace.events.push(TraceEvent::Compute(ops));
    }

    fn vector_compute(&mut self, iters: u64, width: u32, active: u32, ops_per_iter: u64) {
        self.trace.events.push(TraceEvent::VectorCompute(
            iters,
            width,
            active,
            ops_per_iter,
        ));
    }

    fn barrier(&mut self) {
        self.trace.events.push(TraceEvent::Barrier);
    }
}

/// A sink that ignores everything (functional-only execution).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn mem(&mut self, _op: &MemOp) {}
    fn gather(&mut self, _space: Space, _addrs: &[u64], _elem: u32, _store: bool) {}
    fn compute(&mut self, _ops: u64) {}
}

/// A sink that tallies raw event counts; used by tests and by the Fig. 2
/// launch-statistics harness.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CountingSink {
    /// Total element accesses observed.
    pub accesses: u64,
    /// Total bytes moved.
    pub bytes: u64,
    /// Total scalar compute ops.
    pub compute_ops: u64,
    /// Number of memory descriptors.
    pub mem_ops: u64,
    /// Number of barriers.
    pub barriers: u64,
    /// Number of store-side descriptors.
    pub stores: u64,
}

impl TraceSink for CountingSink {
    fn mem(&mut self, op: &MemOp) {
        self.mem_ops += 1;
        self.accesses += op.accesses();
        self.bytes += op.bytes();
        if op.is_store() {
            self.stores += 1;
        }
    }

    fn gather(&mut self, _space: Space, addrs: &[u64], elem: u32, store: bool) {
        self.mem_ops += 1;
        self.accesses += addrs.len() as u64;
        self.bytes += addrs.len() as u64 * u64::from(elem);
        if store {
            self.stores += 1;
        }
    }

    fn compute(&mut self, ops: u64) {
        self.compute_ops += ops;
    }

    fn barrier(&mut self) {
        self.barriers += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warp_op_accounting() {
        let op = MemOp::Warp {
            space: Space::Global,
            base: 0,
            stride: 4,
            lanes: 32,
            elem: 4,
            store: false,
        };
        assert_eq!(op.accesses(), 32);
        assert_eq!(op.bytes(), 128);
        assert!(!op.is_store());
    }

    #[test]
    fn counting_sink_tallies() {
        let mut s = CountingSink::default();
        s.mem(&MemOp::Stream {
            space: Space::Global,
            base: 0,
            count: 10,
            stride: 4,
            elem: 4,
            store: true,
        });
        s.compute(5);
        s.barrier();
        assert_eq!(s.accesses, 10);
        assert_eq!(s.bytes, 40);
        assert_eq!(s.compute_ops, 5);
        assert_eq!(s.stores, 1);
        assert_eq!(s.barriers, 1);
    }

    #[test]
    fn default_vector_compute_prices_as_scalar() {
        let mut s = CountingSink::default();
        s.vector_compute(4, 8, 8, 3);
        assert_eq!(s.compute_ops, 12);
    }

    #[test]
    fn recording_then_replaying_matches_direct_emission() {
        let emit = |sink: &mut dyn TraceSink| {
            sink.mem(&MemOp::Warp {
                space: Space::Global,
                base: 128,
                stride: 4,
                lanes: 32,
                elem: 4,
                store: false,
            });
            sink.gather(Space::Texture, &[0, 64, 4096], 4, false);
            sink.compute(17);
            sink.vector_compute(4, 8, 6, 3);
            sink.barrier();
        };
        let mut direct = CountingSink::default();
        emit(&mut direct);
        let mut rec = RecordingSink::new();
        emit(&mut rec);
        let trace = rec.into_trace();
        assert_eq!(trace.len(), 5);
        let mut replayed = CountingSink::default();
        trace.replay(&mut replayed);
        assert_eq!(direct, replayed);
    }

    #[test]
    fn gather_via_mem_and_via_slice_record_identically() {
        let mut a = RecordingSink::new();
        a.mem(&MemOp::Gather {
            space: Space::Global,
            addrs: vec![8, 16, 1024],
            elem: 4,
            store: true,
        });
        let mut b = RecordingSink::new();
        b.gather(Space::Global, &[8, 16, 1024], 4, true);
        assert_eq!(a.into_trace(), b.into_trace());
    }

    #[test]
    fn group_boundaries_partition_the_trace() {
        let mut rec = RecordingSink::new();
        rec.compute(1);
        rec.gather(Space::Global, &[0, 4], 4, false);
        rec.end_group();
        rec.compute(2);
        rec.end_group();
        let trace = rec.into_trace();
        assert_eq!(trace.group_count(), 2);
        let views: Vec<_> = trace.groups().collect();
        assert_eq!(views[0].len(), 2);
        assert_eq!(views[1].len(), 1);
        let mut g0 = CountingSink::default();
        views[0].replay(&mut g0);
        assert_eq!(g0.accesses, 2);
        assert_eq!(g0.compute_ops, 1);
        let mut g1 = CountingSink::default();
        views[1].replay(&mut g1);
        assert_eq!(g1.compute_ops, 2);
        assert_eq!(g1.mem_ops, 0);
    }

    #[test]
    fn cleared_trace_reuses_capacity() {
        let mut rec = RecordingSink::new();
        rec.gather(Space::Global, &[0; 64], 4, false);
        rec.end_group();
        let mut trace = rec.into_trace();
        let cap = (trace.events.capacity(), trace.addrs.capacity());
        trace.clear();
        assert!(trace.is_empty());
        assert_eq!(trace.group_count(), 0);
        assert_eq!((trace.events.capacity(), trace.addrs.capacity()), cap);
        let mut rec = RecordingSink::reusing(trace);
        rec.compute(3);
        rec.end_group();
        let trace = rec.into_trace();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.group_count(), 1);
    }

    #[test]
    fn atomics_count_as_stores() {
        let op = MemOp::Atomic {
            space: Space::Global,
            base: 64,
            lanes: 8,
            distinct: 2,
        };
        assert!(op.is_store());
        assert_eq!(op.accesses(), 8);
    }
}
