//! Cost traces emitted by executing work-groups.
//!
//! Kernels compute real results through [`crate::Args`] and, in parallel,
//! describe *what the hardware would have done* through batched memory-op
//! descriptors. Device timing models implement [`TraceSink`] and price the
//! descriptors as they arrive, so no trace is ever materialized.

use crate::Space;

/// One batched memory operation, as seen by a device timing model.
///
/// Addresses are in *bytes* in the flat virtual address space managed by
/// [`crate::Buffer`]; `elem` is the element size in bytes. A "warp" op
/// describes what one SIMD/warp issue slot does across its lanes; a
/// "stream" op summarizes a sequential per-work-item loop.
#[derive(Debug, Clone, PartialEq)]
pub enum MemOp {
    /// `lanes` lanes access consecutive-strided elements:
    /// lane `l` touches byte address `base + l * stride`.
    /// `stride` and `base` are in bytes. The classic coalescing shape.
    Warp {
        /// Memory space being accessed.
        space: Space,
        /// Byte address touched by lane 0.
        base: u64,
        /// Byte distance between consecutive lanes.
        stride: i64,
        /// Number of active lanes.
        lanes: u32,
        /// Element size in bytes.
        elem: u32,
        /// Whether this is a store.
        store: bool,
    },
    /// Each active lane accesses its own arbitrary byte address
    /// (data-dependent gather/scatter).
    Gather {
        /// Memory space being accessed.
        space: Space,
        /// Byte addresses, one per active lane.
        addrs: Vec<u64>,
        /// Element size in bytes.
        elem: u32,
        /// Whether this is a store (scatter).
        store: bool,
    },
    /// `repeat` back-to-back warp accesses with identical lane shape: the
    /// k-th access has lane 0 at `base + k * step` (a batched inner loop,
    /// e.g. the k-loop of a dense kernel). Costing treats each step like a
    /// [`MemOp::Warp`] with the same stride and lane count.
    WarpSeq {
        /// Memory space being accessed.
        space: Space,
        /// Byte address touched by lane 0 of the first access.
        base: u64,
        /// Byte distance between consecutive lanes.
        stride: i64,
        /// Number of active lanes.
        lanes: u32,
        /// Element size in bytes.
        elem: u32,
        /// Whether this is a store.
        store: bool,
        /// Number of accesses in the sequence.
        repeat: u32,
        /// Byte advance of lane 0 between consecutive accesses.
        step: i64,
    },
    /// One work-item streams `count` elements starting at `base`, advancing
    /// `stride` bytes per element (sequential CPU-style loop).
    Stream {
        /// Memory space being accessed.
        space: Space,
        /// Starting byte address.
        base: u64,
        /// Number of elements accessed.
        count: u64,
        /// Byte distance between consecutive accesses.
        stride: i64,
        /// Element size in bytes.
        elem: u32,
        /// Whether this is a store.
        store: bool,
    },
    /// `lanes` lanes perform a read-modify-write on the same or nearby
    /// locations; the device serializes contended lanes.
    Atomic {
        /// Memory space being accessed.
        space: Space,
        /// Byte address of the contended word.
        base: u64,
        /// Number of participating lanes.
        lanes: u32,
        /// Number of *distinct* words touched (1 = full contention).
        distinct: u32,
    },
    /// Scratchpad access with an explicit bank-conflict degree
    /// (`conflict = 1` means conflict-free).
    Scratchpad {
        /// Number of active lanes.
        lanes: u32,
        /// Max number of lanes hitting the same bank.
        conflict: u32,
        /// Whether this is a store.
        store: bool,
    },
}

impl MemOp {
    /// Number of element accesses this descriptor represents.
    pub fn accesses(&self) -> u64 {
        match self {
            MemOp::Warp { lanes, .. } => u64::from(*lanes),
            MemOp::WarpSeq { lanes, repeat, .. } => u64::from(*lanes) * u64::from(*repeat),
            MemOp::Gather { addrs, .. } => addrs.len() as u64,
            MemOp::Stream { count, .. } => *count,
            MemOp::Atomic { lanes, .. } => u64::from(*lanes),
            MemOp::Scratchpad { lanes, .. } => u64::from(*lanes),
        }
    }

    /// Bytes moved by this descriptor (0 for pure atomics' payload is
    /// counted as one element per lane).
    pub fn bytes(&self) -> u64 {
        match self {
            MemOp::Warp { lanes, elem, .. } => u64::from(*lanes) * u64::from(*elem),
            MemOp::WarpSeq {
                lanes,
                elem,
                repeat,
                ..
            } => u64::from(*lanes) * u64::from(*elem) * u64::from(*repeat),
            MemOp::Gather { addrs, elem, .. } => addrs.len() as u64 * u64::from(*elem),
            MemOp::Stream { count, elem, .. } => count * u64::from(*elem),
            MemOp::Atomic { lanes, .. } => u64::from(*lanes) * 4,
            MemOp::Scratchpad { lanes, .. } => u64::from(*lanes) * 4,
        }
    }

    /// Whether this is a store-side operation.
    pub fn is_store(&self) -> bool {
        match self {
            MemOp::Warp { store, .. }
            | MemOp::WarpSeq { store, .. }
            | MemOp::Gather { store, .. }
            | MemOp::Stream { store, .. }
            | MemOp::Scratchpad { store, .. } => *store,
            MemOp::Atomic { .. } => true,
        }
    }
}

/// Consumer of a work-group's cost trace. Implemented by the device models.
pub trait TraceSink {
    /// A batched memory operation was issued.
    fn mem(&mut self, op: &MemOp);

    /// `ops` scalar arithmetic operations were executed.
    fn compute(&mut self, ops: u64);

    /// `iters` iterations of a SIMD/vector loop executed with `active`
    /// useful lanes out of `width` (CPU vectorization model; divergence
    /// masking overhead grows with `width`, §1/Fig. 1 of the paper).
    fn vector_compute(&mut self, iters: u64, width: u32, active: u32, ops_per_iter: u64) {
        // Default: price as scalar work for sinks without a SIMD model.
        let _ = (width, active);
        self.compute(iters.saturating_mul(ops_per_iter));
    }

    /// Work-group barrier.
    fn barrier(&mut self) {}
}

/// One recorded trace event, replayable into any [`TraceSink`].
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A batched memory operation.
    Mem(MemOp),
    /// Scalar compute ops.
    Compute(u64),
    /// A SIMD/vector loop: `(iters, width, active, ops_per_iter)`.
    VectorCompute(u64, u32, u32, u64),
    /// A work-group barrier.
    Barrier,
}

/// The full cost trace of one work-group, captured by a [`RecordingSink`].
///
/// Recorded traces are what lets the parallel executor split a launch into
/// two phases: worker threads run the kernels functionally and *record*
/// their traces, then a single serial pass replays every trace in canonical
/// work-group order against the stateful device cost models — so the priced
/// timeline is bit-identical no matter how many workers executed phase one.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecordedTrace {
    events: Vec<TraceEvent>,
}

impl RecordedTrace {
    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Feeds every recorded event into `sink`, in recording order.
    pub fn replay(&self, sink: &mut dyn TraceSink) {
        for ev in &self.events {
            match ev {
                TraceEvent::Mem(op) => sink.mem(op),
                TraceEvent::Compute(ops) => sink.compute(*ops),
                TraceEvent::VectorCompute(iters, width, active, ops) => {
                    sink.vector_compute(*iters, *width, *active, *ops)
                }
                TraceEvent::Barrier => sink.barrier(),
            }
        }
    }
}

/// A sink that materializes the trace instead of pricing it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecordingSink {
    trace: RecordedTrace,
}

impl RecordingSink {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        RecordingSink::default()
    }

    /// Consumes the recorder, yielding the captured trace.
    pub fn into_trace(self) -> RecordedTrace {
        self.trace
    }
}

impl TraceSink for RecordingSink {
    fn mem(&mut self, op: &MemOp) {
        self.trace.events.push(TraceEvent::Mem(op.clone()));
    }

    fn compute(&mut self, ops: u64) {
        self.trace.events.push(TraceEvent::Compute(ops));
    }

    fn vector_compute(&mut self, iters: u64, width: u32, active: u32, ops_per_iter: u64) {
        self.trace.events.push(TraceEvent::VectorCompute(
            iters,
            width,
            active,
            ops_per_iter,
        ));
    }

    fn barrier(&mut self) {
        self.trace.events.push(TraceEvent::Barrier);
    }
}

/// A sink that ignores everything (functional-only execution).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn mem(&mut self, _op: &MemOp) {}
    fn compute(&mut self, _ops: u64) {}
}

/// A sink that tallies raw event counts; used by tests and by the Fig. 2
/// launch-statistics harness.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CountingSink {
    /// Total element accesses observed.
    pub accesses: u64,
    /// Total bytes moved.
    pub bytes: u64,
    /// Total scalar compute ops.
    pub compute_ops: u64,
    /// Number of memory descriptors.
    pub mem_ops: u64,
    /// Number of barriers.
    pub barriers: u64,
    /// Number of store-side descriptors.
    pub stores: u64,
}

impl TraceSink for CountingSink {
    fn mem(&mut self, op: &MemOp) {
        self.mem_ops += 1;
        self.accesses += op.accesses();
        self.bytes += op.bytes();
        if op.is_store() {
            self.stores += 1;
        }
    }

    fn compute(&mut self, ops: u64) {
        self.compute_ops += ops;
    }

    fn barrier(&mut self) {
        self.barriers += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warp_op_accounting() {
        let op = MemOp::Warp {
            space: Space::Global,
            base: 0,
            stride: 4,
            lanes: 32,
            elem: 4,
            store: false,
        };
        assert_eq!(op.accesses(), 32);
        assert_eq!(op.bytes(), 128);
        assert!(!op.is_store());
    }

    #[test]
    fn counting_sink_tallies() {
        let mut s = CountingSink::default();
        s.mem(&MemOp::Stream {
            space: Space::Global,
            base: 0,
            count: 10,
            stride: 4,
            elem: 4,
            store: true,
        });
        s.compute(5);
        s.barrier();
        assert_eq!(s.accesses, 10);
        assert_eq!(s.bytes, 40);
        assert_eq!(s.compute_ops, 5);
        assert_eq!(s.stores, 1);
        assert_eq!(s.barriers, 1);
    }

    #[test]
    fn default_vector_compute_prices_as_scalar() {
        let mut s = CountingSink::default();
        s.vector_compute(4, 8, 8, 3);
        assert_eq!(s.compute_ops, 12);
    }

    #[test]
    fn recording_then_replaying_matches_direct_emission() {
        let emit = |sink: &mut dyn TraceSink| {
            sink.mem(&MemOp::Warp {
                space: Space::Global,
                base: 128,
                stride: 4,
                lanes: 32,
                elem: 4,
                store: false,
            });
            sink.compute(17);
            sink.vector_compute(4, 8, 6, 3);
            sink.barrier();
        };
        let mut direct = CountingSink::default();
        emit(&mut direct);
        let mut rec = RecordingSink::new();
        emit(&mut rec);
        let trace = rec.into_trace();
        assert_eq!(trace.len(), 4);
        let mut replayed = CountingSink::default();
        trace.replay(&mut replayed);
        assert_eq!(direct, replayed);
    }

    #[test]
    fn atomics_count_as_stores() {
        let op = MemOp::Atomic {
            space: Space::Global,
            base: 64,
            lanes: 8,
            distinct: 2,
        };
        assert!(op.is_store());
        assert_eq!(op.accesses(), 8);
    }
}
