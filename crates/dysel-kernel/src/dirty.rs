//! Dirty-range bookkeeping for span-sized buffer restores.
//!
//! The launch engine's repair/rollback paths historically treated every
//! buffer as all-or-nothing: a span that wrote 32 rows of a megabyte
//! output still paid full-buffer scans (and copies) to merge, digest or
//! restore it. [`DirtyRanges`] is the explicit alternative: a sorted,
//! coalesced set of half-open element ranges that some writer touched,
//! which restore paths can replay to copy only those bytes.
//!
//! The ranges a consumer feeds in may overlap, abut or be empty in any
//! order — [`DirtyRanges::mark`] normalises them, so iteration always
//! yields disjoint, ascending, non-empty ranges.

/// A sorted, coalesced set of half-open element ranges `[start, end)`.
///
/// # Example
///
/// ```
/// use dysel_kernel::DirtyRanges;
/// let mut d = DirtyRanges::new();
/// d.mark(10, 20);
/// d.mark(30, 40);
/// d.mark(18, 30); // bridges the gap
/// assert_eq!(d.iter().collect::<Vec<_>>(), vec![(10, 40)]);
/// assert_eq!(d.covered(), 30);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirtyRanges {
    ranges: Vec<(u64, u64)>,
}

impl DirtyRanges {
    /// Creates an empty set.
    pub fn new() -> Self {
        DirtyRanges::default()
    }

    /// Marks `[start, end)` dirty. Empty ranges are ignored; overlapping
    /// or adjacent ranges coalesce with what is already marked.
    pub fn mark(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        // First range starting strictly after `start`.
        let i = self.ranges.partition_point(|&(s, _)| s <= start);
        let idx = if i > 0 && self.ranges[i - 1].1 >= start {
            // Overlaps or abuts the predecessor: grow it.
            self.ranges[i - 1].1 = self.ranges[i - 1].1.max(end);
            i - 1
        } else {
            self.ranges.insert(i, (start, end));
            i
        };
        // Swallow successors the grown range now overlaps or abuts.
        let mut j = idx + 1;
        while j < self.ranges.len() && self.ranges[j].0 <= self.ranges[idx].1 {
            self.ranges[idx].1 = self.ranges[idx].1.max(self.ranges[j].1);
            j += 1;
        }
        self.ranges.drain(idx + 1..j);
    }

    /// Whether nothing is marked.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Number of disjoint ranges after coalescing.
    pub fn range_count(&self) -> usize {
        self.ranges.len()
    }

    /// Total number of elements covered.
    pub fn covered(&self) -> u64 {
        self.ranges.iter().map(|&(s, e)| e - s).sum()
    }

    /// Iterates the disjoint ranges in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.ranges.iter().copied()
    }

    /// Forgets everything.
    pub fn clear(&mut self) {
        self.ranges.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ranges_are_ignored() {
        let mut d = DirtyRanges::new();
        d.mark(5, 5);
        d.mark(9, 3);
        assert!(d.is_empty());
        assert_eq!(d.covered(), 0);
    }

    #[test]
    fn disjoint_ranges_stay_sorted() {
        let mut d = DirtyRanges::new();
        d.mark(30, 40);
        d.mark(0, 5);
        d.mark(10, 20);
        assert_eq!(
            d.iter().collect::<Vec<_>>(),
            vec![(0, 5), (10, 20), (30, 40)]
        );
        assert_eq!(d.range_count(), 3);
    }

    #[test]
    fn overlapping_and_adjacent_marks_coalesce() {
        let mut d = DirtyRanges::new();
        d.mark(10, 20);
        d.mark(20, 25); // adjacent
        d.mark(5, 12); // overlapping from the left
        d.mark(0, 100); // engulfs everything
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![(0, 100)]);
    }

    #[test]
    fn bridge_swallows_multiple_successors() {
        let mut d = DirtyRanges::new();
        d.mark(0, 2);
        d.mark(4, 6);
        d.mark(8, 10);
        d.mark(1, 9);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![(0, 10)]);
    }

    /// Reference model: a boolean membership bitmap.
    #[cfg(feature = "proptest")]
    #[test]
    fn random_marks_match_bitmap_model() {
        use crate::XorShiftRng;
        let mut rng = XorShiftRng::seed_from_u64(0x00D1_57A0);
        for _ in 0..200 {
            let mut d = DirtyRanges::new();
            let mut model = [false; 256];
            for _ in 0..rng.gen_range_u32(0, 32) {
                let a = rng.gen_range_u32(0, 256) as u64;
                let b = rng.gen_range_u32(0, 257) as u64;
                d.mark(a, b);
                for x in a..b.min(256) {
                    model[x as usize] = true;
                }
            }
            // Same membership...
            for (x, &m) in model.iter().enumerate() {
                let x = x as u64;
                let held = d.iter().any(|(s, e)| s <= x && x < e);
                assert_eq!(held, m, "element {x}");
            }
            // ...and canonical form: ascending, disjoint, non-empty, with
            // gaps between consecutive ranges.
            let rs: Vec<_> = d.iter().collect();
            for w in rs.windows(2) {
                assert!(w[0].1 < w[1].0, "ranges {w:?} not disjoint-with-gap");
            }
            for &(s, e) in &rs {
                assert!(s < e);
            }
            assert_eq!(d.covered(), model.iter().filter(|&&m| m).count() as u64);
        }
    }
}
