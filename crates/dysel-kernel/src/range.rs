//! Ranges of workload units.

use std::fmt;

/// A half-open range `[start, end)` of *workload units*.
///
/// A workload unit is the finest-grained independent slice of the
/// computation (e.g. one output tile of `sgemm`, one row block of `spmv`).
/// A kernel variant with work-assignment factor `w` processes `w`
/// consecutive units per work-group; micro-profiling assigns distinct unit
/// ranges to distinct profiling launches (productive profiling, §2.2).
///
/// # Example
///
/// ```
/// use dysel_kernel::UnitRange;
/// let r = UnitRange::new(4, 10);
/// assert_eq!(r.len(), 6);
/// assert!(r.contains(9));
/// assert!(!r.contains(10));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct UnitRange {
    /// First unit covered.
    pub start: u64,
    /// One past the last unit covered.
    pub end: u64,
}

impl UnitRange {
    /// Creates the range `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: u64, end: u64) -> Self {
        assert!(start <= end, "invalid unit range {start}..{end}");
        UnitRange { start, end }
    }

    /// Number of units in the range.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether `unit` lies in the range.
    pub fn contains(&self, unit: u64) -> bool {
        unit >= self.start && unit < self.end
    }

    /// Intersection with another range (empty ranges collapse to `start`).
    pub fn intersect(&self, other: UnitRange) -> UnitRange {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end).max(start);
        UnitRange { start, end }
    }

    /// Splits the range into per-group unit ranges, `per_group` units each;
    /// the final group may be short. Returns an iterator of `(group_index,
    /// UnitRange)` pairs.
    pub fn groups(&self, per_group: u64) -> impl Iterator<Item = (u64, UnitRange)> + '_ {
        assert!(per_group > 0, "per_group must be positive");
        let (start, end) = (self.start, self.end);
        (0..self.len().div_ceil(per_group)).map(move |g| {
            let s = start + g * per_group;
            let e = (s + per_group).min(end);
            (g, UnitRange { start: s, end: e })
        })
    }

    /// Iterate over the individual unit indices.
    pub fn iter(&self) -> std::ops::Range<u64> {
        self.start..self.end
    }
}

impl fmt::Display for UnitRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// Partitions `len` items into at most `max_spans` contiguous half-open
/// index spans, yielding `(lo, hi)` bounds in order.
///
/// This is the canonical span geometry of the two-phase launch engine:
/// the parallel functional phase fans each launch's work-groups out span
/// by span, and the budgeted (cooperatively preemptible) execution path
/// walks the *same* spans as its checkpoint structure — so the two paths
/// agree on group ordering and a launch's observable results never depend
/// on which path ran it. The partition depends only on `len` and
/// `max_spans` (never on worker count), and spans are balanced to within
/// one item.
///
/// # Example
///
/// ```
/// use dysel_kernel::span_bounds;
/// let spans: Vec<_> = span_bounds(10, 4).collect();
/// assert_eq!(spans, vec![(0, 2), (2, 5), (5, 7), (7, 10)]);
/// // Fewer items than spans: one span per item.
/// assert_eq!(span_bounds(2, 4).count(), 2);
/// ```
pub fn span_bounds(len: usize, max_spans: usize) -> impl Iterator<Item = (usize, usize)> {
    let spans = len.min(max_spans);
    (0..spans).map(move |s| (s * len / spans, (s + 1) * len / spans))
}

impl From<std::ops::Range<u64>> for UnitRange {
    fn from(r: std::ops::Range<u64>) -> Self {
        UnitRange::new(r.start, r.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_partition_exactly() {
        let r = UnitRange::new(10, 31);
        let parts: Vec<_> = r.groups(8).collect();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].1, UnitRange::new(10, 18));
        assert_eq!(parts[1].1, UnitRange::new(18, 26));
        assert_eq!(parts[2].1, UnitRange::new(26, 31)); // short tail
        let total: u64 = parts.iter().map(|(_, p)| p.len()).sum();
        assert_eq!(total, r.len());
    }

    #[test]
    fn intersect_disjoint_is_empty() {
        let a = UnitRange::new(0, 5);
        let b = UnitRange::new(7, 9);
        assert!(a.intersect(b).is_empty());
        assert_eq!(a.intersect(UnitRange::new(3, 8)), UnitRange::new(3, 5));
    }

    #[test]
    #[should_panic(expected = "invalid unit range")]
    fn reversed_range_panics() {
        let _ = UnitRange::new(5, 1);
    }

    #[test]
    fn span_bounds_cover_exactly_once() {
        for len in [0usize, 1, 2, 15, 16, 17, 100] {
            for max_spans in [1usize, 4, 16] {
                let spans: Vec<_> = span_bounds(len, max_spans).collect();
                assert_eq!(spans.len(), len.min(max_spans));
                let mut cursor = 0;
                for (lo, hi) in spans {
                    assert_eq!(lo, cursor, "spans must be contiguous");
                    assert!(hi >= lo);
                    cursor = hi;
                }
                assert_eq!(cursor, len, "spans must cover every item");
            }
        }
    }

    #[test]
    fn from_std_range() {
        let r: UnitRange = (2..6u64).into();
        assert_eq!(r.len(), 4);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![2, 3, 4, 5]);
    }
}
