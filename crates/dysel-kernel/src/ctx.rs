//! Work-group execution context.

use crate::{Args, MemOp, NullSink, Space, TraceSink, UnitRange};

/// Snapshot of one argument's address/type/space, captured at launch.
#[derive(Debug, Clone, Copy)]
struct ArgLayout {
    addr: u64,
    elem: u32,
    space: Space,
}

/// The context handed to a [`crate::Kernel`] for one work-group.
///
/// It tells the kernel *which slice of the workload* this group covers
/// (after DySel's block-index offset shifting, §3.3 "Kernel Code
/// Transformations") and receives the group's cost trace. All trace helper
/// methods take **element** indices relative to the argument buffer; the
/// context translates them into byte addresses for the device models.
pub struct GroupCtx<'a> {
    group: u64,
    units: UnitRange,
    group_size: u32,
    layouts: Vec<ArgLayout>,
    /// Reusable address-translation buffer for gathers/scatters: filled per
    /// call and handed to the sink as a slice, so the hot gather path costs
    /// no allocation after the first call.
    scratch: Vec<u64>,
    sink: &'a mut dyn TraceSink,
}

impl std::fmt::Debug for GroupCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupCtx")
            .field("group", &self.group)
            .field("units", &self.units)
            .field("group_size", &self.group_size)
            .field("args", &self.layouts.len())
            .finish()
    }
}

impl<'a> GroupCtx<'a> {
    /// Builds a context for a launch. `placements` optionally overrides the
    /// memory space of each argument (data-placement variants); `None`
    /// entries (or a short slice) fall back to the buffer's own binding.
    pub fn new(
        group: u64,
        units: UnitRange,
        group_size: u32,
        args: &Args,
        placements: &[Option<Space>],
        sink: &'a mut dyn TraceSink,
    ) -> Self {
        let layouts = args
            .iter()
            .enumerate()
            .map(|(i, b)| ArgLayout {
                addr: b.addr(),
                elem: b.elem_type().size_bytes() as u32,
                space: placements.get(i).copied().flatten().unwrap_or(b.space()),
            })
            .collect();
        GroupCtx {
            group,
            units,
            group_size,
            layouts,
            scratch: Vec::new(),
            sink,
        }
    }

    /// Convenience constructor for tests and doc examples: group `group`
    /// covering units `[start, end)`, default placements, no trace.
    pub fn for_test(group: u64, start: u64, end: u64, args: &Args) -> GroupCtx<'static> {
        // A leaked NullSink is fine: zero-sized, once per call site in tests.
        let sink: &'static mut NullSink = Box::leak(Box::new(NullSink));
        GroupCtx::new(group, UnitRange::new(start, end), 256, args, &[], sink)
    }

    /// Index of this work-group within its launch.
    pub fn group(&self) -> u64 {
        self.group
    }

    /// Workload units this group must process (already offset-shifted).
    pub fn units(&self) -> UnitRange {
        self.units
    }

    /// Work-items per work-group for the running variant.
    pub fn group_size(&self) -> u32 {
        self.group_size
    }

    /// Memory space argument `arg` resolves to under the active placement.
    ///
    /// # Panics
    ///
    /// Panics if `arg` is out of range (kernels and variants are built
    /// together; a bad index is a programming error in the variant).
    pub fn space_of(&self, arg: usize) -> Space {
        self.layouts[arg].space
    }

    fn layout(&self, arg: usize) -> ArgLayout {
        self.layouts[arg]
    }

    // ---- trace emission helpers -------------------------------------

    /// One warp/vector issue: `lanes` lanes load consecutive elements
    /// starting at element `base`, lane `l` reading element
    /// `base + l * stride_elems`.
    pub fn warp_load(&mut self, arg: usize, base: u64, stride_elems: i64, lanes: u32) {
        let l = self.layout(arg);
        self.sink.mem(&MemOp::Warp {
            space: l.space,
            base: l.addr + base * u64::from(l.elem),
            stride: stride_elems * i64::from(l.elem),
            lanes,
            elem: l.elem,
            store: false,
        });
    }

    /// A batched inner loop of `repeat` warp loads: the k-th issue starts
    /// at element `base + k * step_elems` (e.g. a dense kernel's k-loop).
    pub fn warp_load_seq(
        &mut self,
        arg: usize,
        base: u64,
        stride_elems: i64,
        lanes: u32,
        repeat: u32,
        step_elems: i64,
    ) {
        let l = self.layout(arg);
        self.sink.mem(&MemOp::WarpSeq {
            space: l.space,
            base: l.addr + base * u64::from(l.elem),
            stride: stride_elems * i64::from(l.elem),
            lanes,
            elem: l.elem,
            store: false,
            repeat,
            step: step_elems * i64::from(l.elem),
        });
    }

    /// Store-side counterpart of [`GroupCtx::warp_load`].
    pub fn warp_store(&mut self, arg: usize, base: u64, stride_elems: i64, lanes: u32) {
        let l = self.layout(arg);
        self.sink.mem(&MemOp::Warp {
            space: l.space,
            base: l.addr + base * u64::from(l.elem),
            stride: stride_elems * i64::from(l.elem),
            lanes,
            elem: l.elem,
            store: true,
        });
    }

    /// Data-dependent gather: each active lane reads its own element index.
    pub fn gather(&mut self, arg: usize, elem_indices: &[u64]) {
        let l = self.layout(arg);
        self.scratch.clear();
        self.scratch
            .extend(elem_indices.iter().map(|&i| l.addr + i * u64::from(l.elem)));
        self.sink.gather(l.space, &self.scratch, l.elem, false);
    }

    /// Data-dependent scatter: each active lane writes its own element index.
    pub fn scatter(&mut self, arg: usize, elem_indices: &[u64]) {
        let l = self.layout(arg);
        self.scratch.clear();
        self.scratch
            .extend(elem_indices.iter().map(|&i| l.addr + i * u64::from(l.elem)));
        self.sink.gather(l.space, &self.scratch, l.elem, true);
    }

    /// Sequential load loop: `count` elements from element `base`, advancing
    /// `stride_elems` per access (CPU work-item serialization shape).
    pub fn stream_load(&mut self, arg: usize, base: u64, count: u64, stride_elems: i64) {
        let l = self.layout(arg);
        self.sink.mem(&MemOp::Stream {
            space: l.space,
            base: l.addr + base * u64::from(l.elem),
            count,
            stride: stride_elems * i64::from(l.elem),
            elem: l.elem,
            store: false,
        });
    }

    /// Sequential store loop; see [`GroupCtx::stream_load`].
    pub fn stream_store(&mut self, arg: usize, base: u64, count: u64, stride_elems: i64) {
        let l = self.layout(arg);
        self.sink.mem(&MemOp::Stream {
            space: l.space,
            base: l.addr + base * u64::from(l.elem),
            count,
            stride: stride_elems * i64::from(l.elem),
            elem: l.elem,
            store: true,
        });
    }

    /// Atomic read-modify-write by `lanes` lanes on `distinct` distinct
    /// words at/after element `base`.
    pub fn atomic(&mut self, arg: usize, base: u64, lanes: u32, distinct: u32) {
        let l = self.layout(arg);
        self.sink.mem(&MemOp::Atomic {
            space: l.space,
            base: l.addr + base * u64::from(l.elem),
            lanes,
            distinct: distinct.max(1),
        });
    }

    /// Scratchpad access with bank-conflict degree `conflict` (1 = none).
    pub fn scratchpad(&mut self, lanes: u32, conflict: u32, store: bool) {
        self.sink.mem(&MemOp::Scratchpad {
            lanes,
            conflict: conflict.max(1),
            store,
        });
    }

    /// `ops` scalar arithmetic operations.
    pub fn compute(&mut self, ops: u64) {
        self.sink.compute(ops);
    }

    /// `iters` iterations of a `width`-wide SIMD loop with `active` useful
    /// lanes, `ops_per_iter` vector ops per iteration.
    pub fn vector_compute(&mut self, iters: u64, width: u32, active: u32, ops_per_iter: u64) {
        self.sink.vector_compute(iters, width, active, ops_per_iter);
    }

    /// Work-group barrier.
    pub fn barrier(&mut self) {
        self.sink.barrier();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Buffer, CountingSink};

    fn args() -> Args {
        let mut a = Args::new();
        a.push(Buffer::f32("x", vec![0.0; 64], Space::Global));
        a.push(Buffer::u32("idx", vec![0; 64], Space::Texture));
        a
    }

    #[test]
    fn addresses_are_translated_to_bytes() {
        let a = args();
        let base_addr = a.buffer(0).unwrap().addr();
        struct Probe {
            expect_base: u64,
            hit: bool,
        }
        impl TraceSink for Probe {
            fn mem(&mut self, op: &MemOp) {
                if let MemOp::Warp { base, stride, .. } = op {
                    assert_eq!(*base, self.expect_base + 8 * 4);
                    assert_eq!(*stride, 4);
                    self.hit = true;
                }
            }
            fn compute(&mut self, _ops: u64) {}
        }
        let mut probe = Probe {
            expect_base: base_addr,
            hit: false,
        };
        let mut ctx = GroupCtx::new(0, UnitRange::new(0, 1), 32, &a, &[], &mut probe);
        ctx.warp_load(0, 8, 1, 32);
        assert!(probe.hit);
    }

    #[test]
    fn placement_overrides_buffer_space() {
        let a = args();
        let mut sink = CountingSink::default();
        let ctx = GroupCtx::new(
            0,
            UnitRange::new(0, 1),
            32,
            &a,
            &[Some(Space::Constant)],
            &mut sink,
        );
        assert_eq!(ctx.space_of(0), Space::Constant);
        assert_eq!(ctx.space_of(1), Space::Texture); // falls back to binding
    }

    #[test]
    fn gather_translates_every_lane() {
        let a = args();
        struct Probe(Vec<u64>);
        impl TraceSink for Probe {
            fn mem(&mut self, op: &MemOp) {
                if let MemOp::Gather { addrs, .. } = op {
                    self.0 = addrs.clone();
                }
            }
            fn compute(&mut self, _ops: u64) {}
        }
        let mut probe = Probe(vec![]);
        let base = a.buffer(1).unwrap().addr();
        let mut ctx = GroupCtx::new(0, UnitRange::new(0, 1), 32, &a, &[], &mut probe);
        ctx.gather(1, &[0, 5, 9]);
        assert_eq!(probe.0, vec![base, base + 20, base + 36]);
    }

    #[test]
    fn for_test_provides_units() {
        let a = args();
        let ctx = GroupCtx::for_test(3, 6, 12, &a);
        assert_eq!(ctx.group(), 3);
        assert_eq!(ctx.units().len(), 6);
    }
}
