//! Memory spaces a buffer can be bound to.

use std::fmt;

/// The memory space a buffer argument is placed in for a given variant.
///
/// Data-placement optimizations (PORPLE, ref. 7; Jang et al., ref. 15 in the paper)
/// are expressed as kernel variants that bind the same logical buffers to
/// different spaces; the device timing models price accesses per space.
///
/// # Example
///
/// ```
/// use dysel_kernel::Space;
/// assert!(Space::Texture.is_cached_readonly());
/// assert_eq!(Space::default(), Space::Global);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub enum Space {
    /// Off-chip global memory (default placement).
    #[default]
    Global,
    /// Read-only texture / `__ldg` path with its own small cache.
    Texture,
    /// Constant memory: broadcast-efficient, serializes divergent reads.
    Constant,
    /// On-chip scratchpad (OpenCL local / CUDA shared memory). Per
    /// work-group; counted against occupancy by the GPU model.
    Scratchpad,
}

impl Space {
    /// Whether reads from this space go through a dedicated read-only cache.
    pub fn is_cached_readonly(self) -> bool {
        matches!(self, Space::Texture | Space::Constant)
    }

    /// Whether the space lives on-chip (no DRAM traffic).
    pub fn is_on_chip(self) -> bool {
        matches!(self, Space::Scratchpad)
    }

    /// Whether stores to this space are permitted.
    pub fn is_writable(self) -> bool {
        matches!(self, Space::Global | Space::Scratchpad)
    }

    /// All spaces, in a stable order (useful for placement sweeps).
    pub fn all() -> [Space; 4] {
        [
            Space::Global,
            Space::Texture,
            Space::Constant,
            Space::Scratchpad,
        ]
    }
}

impl fmt::Display for Space {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Space::Global => "global",
            Space::Texture => "texture",
            Space::Constant => "constant",
            Space::Scratchpad => "scratchpad",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_are_stable() {
        assert_eq!(Space::Global.to_string(), "global");
        assert_eq!(Space::Texture.to_string(), "texture");
        assert_eq!(Space::Constant.to_string(), "constant");
        assert_eq!(Space::Scratchpad.to_string(), "scratchpad");
    }

    #[test]
    fn writability() {
        assert!(Space::Global.is_writable());
        assert!(Space::Scratchpad.is_writable());
        assert!(!Space::Texture.is_writable());
        assert!(!Space::Constant.is_writable());
    }

    #[test]
    fn all_covers_every_variant() {
        let all = Space::all();
        assert_eq!(all.len(), 4);
        for s in all {
            // round-trips through Display without panicking
            let _ = s.to_string();
        }
    }
}
