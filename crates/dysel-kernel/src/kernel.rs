//! The kernel trait and variant metadata.

use std::fmt;
use std::sync::Arc;

use crate::{Args, GroupCtx, KernelIr, Space};

/// A kernel implementation, executed one work-group at a time.
///
/// Implementations must be deterministic functions of `(ctx.units(),
/// args)`: DySel relies on every variant of a signature computing the same
/// output for the same unit range (that is what makes profiling
/// *productive*, §2.2). Kernels must honour `ctx.units()` exactly — the
/// final group of a launch may cover fewer units than the variant's
/// work-assignment factor.
pub trait Kernel: Send + Sync {
    /// Executes one work-group covering `ctx.units()`, writing real results
    /// into `args` and emitting its cost trace through `ctx`.
    fn run_group(&self, ctx: &mut GroupCtx<'_>, args: &mut Args);
}

impl<F> Kernel for F
where
    F: Fn(&mut GroupCtx<'_>, &mut Args) + Send + Sync,
{
    fn run_group(&self, ctx: &mut GroupCtx<'_>, args: &mut Args) {
        self(ctx, args)
    }
}

/// Identifier of a variant inside a kernel signature's pool (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VariantId(pub usize);

impl fmt::Display for VariantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Metadata registered alongside a kernel implementation — the payload of
/// the paper's `DySelAddKernel` call (Fig. 6(a)).
#[derive(Debug, Clone)]
pub struct VariantMeta {
    /// Human-readable variant name (e.g. `"tiled16-coarse2"`).
    pub name: String,
    /// Work-assignment factor: workload units processed per work-group.
    /// The runtime normalizes profiling work across variants with the LCM
    /// of these factors (safe point analysis, §3.4).
    pub wa_factor: u32,
    /// Work-items per work-group.
    pub group_size: u32,
    /// Argument indices that need sandboxes / private copies during
    /// partial-productive profiling (the `sandbox_index` API parameter).
    pub sandbox_args: Vec<usize>,
    /// Per-argument memory-space overrides (data-placement variants);
    /// `None` keeps the buffer's own binding.
    pub placements: Vec<Option<Space>>,
    /// Declarative IR for the compiler analyses.
    pub ir: KernelIr,
}

impl VariantMeta {
    /// Creates metadata with defaults: factor 1, group size 256, sandboxes
    /// over the IR's output args, no placement overrides.
    pub fn new(name: impl Into<String>, ir: KernelIr) -> Self {
        VariantMeta {
            name: name.into(),
            wa_factor: 1,
            group_size: 256,
            sandbox_args: ir.output_args.clone(),
            placements: Vec::new(),
            ir,
        }
    }

    /// Builder-style: set the work-assignment factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn with_wa_factor(mut self, factor: u32) -> Self {
        assert!(factor > 0, "work-assignment factor must be positive");
        self.wa_factor = factor;
        self
    }

    /// Builder-style: set the work-group size.
    pub fn with_group_size(mut self, size: u32) -> Self {
        assert!(size > 0, "group size must be positive");
        self.group_size = size;
        self
    }

    /// Builder-style: set placement overrides.
    pub fn with_placements(mut self, placements: Vec<Option<Space>>) -> Self {
        self.placements = placements;
        self
    }

    /// Builder-style: set the sandbox argument list explicitly.
    pub fn with_sandbox_args(mut self, args: Vec<usize>) -> Self {
        self.sandbox_args = args;
        self
    }
}

/// One candidate implementation in the kernel pool: metadata plus code.
#[derive(Clone)]
pub struct Variant {
    /// Registration metadata.
    pub meta: VariantMeta,
    /// The implementation.
    pub kernel: Arc<dyn Kernel>,
}

impl Variant {
    /// Bundles a kernel with its metadata.
    pub fn new(meta: VariantMeta, kernel: Arc<dyn Kernel>) -> Self {
        Variant { meta, kernel }
    }

    /// Convenience: wrap a closure kernel.
    pub fn from_fn<F>(meta: VariantMeta, f: F) -> Self
    where
        F: Fn(&mut GroupCtx<'_>, &mut Args) + Send + Sync + 'static,
    {
        Variant {
            meta,
            kernel: Arc::new(f),
        }
    }

    /// Variant name shortcut.
    pub fn name(&self) -> &str {
        &self.meta.name
    }
}

impl fmt::Debug for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Variant")
            .field("name", &self.meta.name)
            .field("wa_factor", &self.meta.wa_factor)
            .field("group_size", &self.meta.group_size)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Buffer, KernelIr};

    #[test]
    fn closure_kernels_work() {
        let v = Variant::from_fn(
            VariantMeta::new("id", KernelIr::regular(vec![0])),
            |ctx, args| {
                let u = ctx.units();
                for i in u.iter() {
                    args.f32_mut(0).unwrap()[i as usize] = i as f32;
                }
            },
        );
        let mut args = Args::new();
        args.push(Buffer::f32("o", vec![0.0; 4], Space::Global));
        let mut ctx = GroupCtx::for_test(0, 1, 3, &args);
        v.kernel.run_group(&mut ctx, &mut args);
        assert_eq!(args.f32(0).unwrap(), &[0.0, 1.0, 2.0, 0.0]);
    }

    #[test]
    fn meta_builder_defaults() {
        let m = VariantMeta::new("x", KernelIr::regular(vec![2]));
        assert_eq!(m.wa_factor, 1);
        assert_eq!(m.sandbox_args, vec![2]);
        let m = m.with_wa_factor(4).with_group_size(128);
        assert_eq!(m.wa_factor, 4);
        assert_eq!(m.group_size, 128);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_wa_factor_rejected() {
        let _ = VariantMeta::new("x", KernelIr::default()).with_wa_factor(0);
    }

    #[test]
    fn variant_id_display() {
        assert_eq!(VariantId(3).to_string(), "v3");
    }
}
