//! A small, dependency-free xorshift64* PRNG.
//!
//! The whole workspace builds offline: input generation, measurement noise
//! and randomized tests all draw from this generator instead of an external
//! crate. Sequences are fully determined by the seed, which is what makes
//! every workload input and every noise trace reproducible bit-for-bit.

/// Deterministic xorshift64* generator.
///
/// Seeding runs the seed through a splitmix64 scramble so that small or
/// zero seeds still produce well-mixed streams (plain xorshift64* has a
/// fixed point at state 0).
///
/// # Example
///
/// ```
/// use dysel_kernel::XorShiftRng;
/// let mut a = XorShiftRng::seed_from_u64(7);
/// let mut b = XorShiftRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.next_f64();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShiftRng {
    state: u64,
}

impl XorShiftRng {
    /// Creates a generator from a seed; equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 scramble: guarantees a non-zero, well-mixed state.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        XorShiftRng { state: z | 1 }
    }

    /// Next raw 64-bit value (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next value in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Next value in `[0, 1)` as `f32`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range_u64: empty range {lo}..{hi}");
        let span = hi - lo;
        // Multiply-shift mapping: negligible bias for the spans used here.
        lo + ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn gen_range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.gen_range_u64(u64::from(lo), u64::from(hi)) as u32
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn gen_range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + self.next_f32() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = XorShiftRng::seed_from_u64(42);
        let mut b = XorShiftRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShiftRng::seed_from_u64(1);
        let mut b = XorShiftRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_seed_works() {
        let mut r = XorShiftRng::seed_from_u64(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn floats_stay_in_unit_interval() {
        let mut r = XorShiftRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.next_f32();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = XorShiftRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.gen_range_u32(10, 20);
            assert!((10..20).contains(&v));
            let f = r.gen_range_f64(-2.0, 2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn mean_is_roughly_centered() {
        let mut r = XorShiftRng::seed_from_u64(5);
        let mean: f64 = (0..4096).map(|_| r.next_f64()).sum::<f64>() / 4096.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
