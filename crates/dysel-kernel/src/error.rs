//! Error type for the programming-model substrate.

use std::error::Error;
use std::fmt;

use crate::ElemType;

/// Errors raised by buffer and argument accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// An argument index was out of range for the [`crate::Args`] set.
    BadArgIndex {
        /// Index requested by the kernel.
        index: usize,
        /// Number of arguments actually present.
        len: usize,
    },
    /// An argument had a different element type than requested.
    TypeMismatch {
        /// Index of the offending argument.
        index: usize,
        /// Element type the caller expected.
        expected: ElemType,
        /// Element type actually stored.
        actual: ElemType,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::BadArgIndex { index, len } => {
                write!(f, "argument index {index} out of range (have {len} args)")
            }
            KernelError::TypeMismatch {
                index,
                expected,
                actual,
            } => write!(
                f,
                "argument {index} has element type {actual}, expected {expected}"
            ),
        }
    }
}

impl Error for KernelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = KernelError::BadArgIndex { index: 3, len: 2 };
        assert!(e.to_string().contains("index 3"));
        let e = KernelError::TypeMismatch {
            index: 1,
            expected: ElemType::F32,
            actual: ElemType::U32,
        };
        assert!(e.to_string().contains("expected f32"));
    }
}
