//! Kernel-based data-parallel programming-model substrate for DySel.
//!
//! This crate provides the vocabulary that the rest of the DySel stack is
//! built on, mirroring the kernel-based data-parallel models (OpenCL, CUDA,
//! OpenACC, C++AMP) targeted by the paper:
//!
//! * [`Buffer`] / [`Args`] — typed device buffers with virtual addresses and
//!   memory-[`Space`] bindings, supporting cheap copy-on-write sandboxing
//!   (the storage backbone of hybrid- and swap-based productive profiling).
//! * [`Kernel`] — a kernel implementation executed one *work-group* at a
//!   time. Work-groups are the micro-profiling granularity of the paper
//!   (§2.1): each work-group covers a contiguous [`UnitRange`] of *workload
//!   units* determined by the variant's work-assignment factor.
//! * [`GroupCtx`] — the execution context handed to a work-group. Kernels
//!   compute real results through [`Args`] *and* emit a cost trace
//!   ([`MemOp`], compute ops) through the context so that device timing
//!   models can price the execution.
//! * [`KernelIr`] — a compact intermediate representation of the kernel's
//!   loop nest and access patterns, consumed by the compiler analyses
//!   (safe point, uniform workload, side effect) of §3.4.
//! * [`Variant`] / [`VariantMeta`] — one candidate implementation deposited
//!   in the kernel pool, carrying its work-assignment factor, work-group
//!   size, sandbox argument list and IR (the `DySelAddKernel` payload of
//!   Fig. 6(a)).
//!
//! # Example
//!
//! ```
//! use dysel_kernel::{Args, Buffer, GroupCtx, Kernel, Space};
//!
//! /// A kernel that doubles every element of arg 1 into arg 0.
//! struct Double;
//! impl Kernel for Double {
//!     fn run_group(&self, ctx: &mut GroupCtx<'_>, args: &mut Args) {
//!         let units = ctx.units();
//!         let (start, end) = (units.start as usize, units.end as usize);
//!         let src: Vec<f32> = args.f32(1).unwrap()[start..end].to_vec();
//!         args.f32_mut(0).unwrap()[start..end]
//!             .iter_mut()
//!             .zip(&src)
//!             .for_each(|(o, s)| *o = 2.0 * s);
//!         let n = (end - start) as u64;
//!         ctx.stream_load(1, start as u64, n, 1);
//!         ctx.stream_store(0, start as u64, n, 1);
//!         ctx.compute(n);
//!     }
//! }
//!
//! let mut args = Args::new();
//! args.push(Buffer::f32("out", vec![0.0; 8], Space::Global));
//! args.push(Buffer::f32("in", (0..8).map(|i| i as f32).collect(), Space::Global));
//! let mut ctx = GroupCtx::for_test(0, 0, 8, &args);
//! Double.run_group(&mut ctx, &mut args);
//! assert_eq!(args.f32(0).unwrap()[3], 6.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod ctx;
mod dirty;
mod error;
mod ir;
mod kernel;
mod profile;
mod range;
mod rng;
mod space;
mod trace;

pub use buffer::{AddrSpace, Args, Buffer, BufferData, ElemType};
pub use ctx::GroupCtx;
pub use dirty::DirtyRanges;
pub use error::KernelError;
pub use ir::{AccessIr, AccessPattern, KernelIr, LoopBound, LoopIr, LoopKind};
pub use kernel::{Kernel, Variant, VariantId, VariantMeta};
pub use profile::{Orchestration, ProfilingMode};
pub use range::{span_bounds, UnitRange};
pub use rng::XorShiftRng;
pub use space::Space;
pub use trace::{
    CountingSink, MemOp, NullSink, RecordedTrace, RecordingSink, TraceEvent, TraceSink, TraceView,
};
