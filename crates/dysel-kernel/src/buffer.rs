//! Typed device buffers and kernel argument sets.
//!
//! Buffers carry a virtual base address (used by the device cache models),
//! a memory-[`Space`] binding and copy-on-write storage. Copy-on-write is
//! what makes the sandbox / private-output mechanics of hybrid- and
//! swap-based partial-productive profiling cheap: a sandbox [`Args`] shares
//! every input buffer with the original and only the written output buffers
//! are actually duplicated.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::{KernelError, Space};

/// Virtual-address bump allocator. Buffers never share cache lines.
static NEXT_ADDR: AtomicU64 = AtomicU64::new(0x1000);

fn alloc_addr(bytes: u64) -> u64 {
    // 256-byte alignment mirrors typical device allocator granularity and
    // keeps distinct buffers in distinct 128-byte coalescing segments.
    let sz = bytes.div_ceil(256).max(1) * 256;
    NEXT_ADDR.fetch_add(sz, Ordering::Relaxed)
}

/// Element type tag of a [`Buffer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElemType {
    /// 32-bit float.
    F32,
    /// 64-bit float.
    F64,
    /// 32-bit unsigned integer.
    U32,
    /// 32-bit signed integer.
    I32,
}

impl ElemType {
    /// Size of one element in bytes.
    pub fn size_bytes(self) -> u64 {
        match self {
            ElemType::F32 | ElemType::U32 | ElemType::I32 => 4,
            ElemType::F64 => 8,
        }
    }
}

impl fmt::Display for ElemType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ElemType::F32 => "f32",
            ElemType::F64 => "f64",
            ElemType::U32 => "u32",
            ElemType::I32 => "i32",
        };
        f.write_str(s)
    }
}

/// Owned, typed storage behind a buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum BufferData {
    /// 32-bit float payload.
    F32(Vec<f32>),
    /// 64-bit float payload.
    F64(Vec<f64>),
    /// 32-bit unsigned integer payload.
    U32(Vec<u32>),
    /// 32-bit signed integer payload.
    I32(Vec<i32>),
}

impl BufferData {
    /// Element type tag.
    pub fn elem_type(&self) -> ElemType {
        match self {
            BufferData::F32(_) => ElemType::F32,
            BufferData::F64(_) => ElemType::F64,
            BufferData::U32(_) => ElemType::U32,
            BufferData::I32(_) => ElemType::I32,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            BufferData::F32(v) => v.len(),
            BufferData::F64(v) => v.len(),
            BufferData::U32(v) => v.len(),
            BufferData::I32(v) => v.len(),
        }
    }

    /// Whether the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total payload size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.len() as u64 * self.elem_type().size_bytes()
    }
}

/// A device buffer: named, typed storage with a virtual base address and a
/// default memory-space binding.
///
/// Cloning a `Buffer` is cheap (the payload is reference-counted); the clone
/// receives a fresh virtual address, matching what a real allocator would do
/// for a sandbox copy. Payload duplication only happens on first write to a
/// shared buffer.
///
/// # Example
///
/// ```
/// use dysel_kernel::{Buffer, Space};
/// let mut b = Buffer::f32("x", vec![1.0, 2.0], Space::Global);
/// let snapshot = b.clone();
/// b.data_mut().and_then(|_| Ok(())).unwrap();
/// assert_eq!(snapshot.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Buffer {
    name: String,
    data: Arc<BufferData>,
    space: Space,
    addr: u64,
}

impl Buffer {
    /// Creates a buffer from raw [`BufferData`].
    pub fn new(name: impl Into<String>, data: BufferData, space: Space) -> Self {
        let addr = alloc_addr(data.size_bytes());
        Buffer {
            name: name.into(),
            data: Arc::new(data),
            space,
            addr,
        }
    }

    /// Creates an `f32` buffer.
    pub fn f32(name: impl Into<String>, data: Vec<f32>, space: Space) -> Self {
        Buffer::new(name, BufferData::F32(data), space)
    }

    /// Creates an `f64` buffer.
    pub fn f64(name: impl Into<String>, data: Vec<f64>, space: Space) -> Self {
        Buffer::new(name, BufferData::F64(data), space)
    }

    /// Creates a `u32` buffer.
    pub fn u32(name: impl Into<String>, data: Vec<u32>, space: Space) -> Self {
        Buffer::new(name, BufferData::U32(data), space)
    }

    /// Creates an `i32` buffer.
    pub fn i32(name: impl Into<String>, data: Vec<i32>, space: Space) -> Self {
        Buffer::new(name, BufferData::I32(data), space)
    }

    /// Buffer name (for reports and debugging).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Virtual base address.
    pub fn addr(&self) -> u64 {
        self.addr
    }

    /// Default memory-space binding.
    pub fn space(&self) -> Space {
        self.space
    }

    /// Rebinds the default memory space.
    pub fn set_space(&mut self, space: Space) {
        self.space = space;
    }

    /// Element type.
    pub fn elem_type(&self) -> ElemType {
        self.data.elem_type()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Payload size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.data.size_bytes()
    }

    /// Shared view of the payload.
    pub fn data(&self) -> &BufferData {
        &self.data
    }

    /// Mutable view of the payload (clones if shared).
    ///
    /// # Errors
    ///
    /// Never fails today; returns `Result` to keep room for write-protected
    /// spaces.
    pub fn data_mut(&mut self) -> Result<&mut BufferData, KernelError> {
        Ok(Arc::make_mut(&mut self.data))
    }

    /// Whether this buffer currently shares its payload with another.
    pub fn is_shared(&self) -> bool {
        Arc::strong_count(&self.data) > 1
    }

    /// Makes a sandbox copy: shares the payload (copy-on-write) but takes a
    /// fresh virtual address, as a real private allocation would.
    pub fn sandbox_clone(&self) -> Buffer {
        let mut b = self.clone();
        b.addr = alloc_addr(b.size_bytes());
        b.name = format!("{}#sandbox", self.name);
        b
    }

    /// Swaps payload and address with another buffer (swap-based profiling).
    pub fn swap_with(&mut self, other: &mut Buffer) {
        std::mem::swap(&mut self.data, &mut other.data);
        std::mem::swap(&mut self.addr, &mut other.addr);
    }
}

/// The argument set handed to a kernel launch: an ordered list of buffers.
///
/// Argument indices are the kernel-facing names; metadata such as
/// [`crate::VariantMeta::sandbox_args`] refers to these indices.
#[derive(Debug, Clone, Default)]
pub struct Args {
    bufs: Vec<Buffer>,
}

impl Args {
    /// Creates an empty argument set.
    pub fn new() -> Self {
        Args::default()
    }

    /// Appends a buffer, returning its argument index.
    pub fn push(&mut self, buf: Buffer) -> usize {
        self.bufs.push(buf);
        self.bufs.len() - 1
    }

    /// Number of arguments.
    pub fn len(&self) -> usize {
        self.bufs.len()
    }

    /// Whether there are no arguments.
    pub fn is_empty(&self) -> bool {
        self.bufs.is_empty()
    }

    /// Borrow an argument buffer.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::BadArgIndex`] if `index` is out of range.
    pub fn buffer(&self, index: usize) -> Result<&Buffer, KernelError> {
        self.bufs.get(index).ok_or(KernelError::BadArgIndex {
            index,
            len: self.bufs.len(),
        })
    }

    /// Mutably borrow an argument buffer.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::BadArgIndex`] if `index` is out of range.
    pub fn buffer_mut(&mut self, index: usize) -> Result<&mut Buffer, KernelError> {
        let len = self.bufs.len();
        self.bufs
            .get_mut(index)
            .ok_or(KernelError::BadArgIndex { index, len })
    }

    /// Iterate over the buffers.
    pub fn iter(&self) -> std::slice::Iter<'_, Buffer> {
        self.bufs.iter()
    }

    /// Typed read access to an `f32` argument.
    ///
    /// # Errors
    ///
    /// Fails on a bad index or if the argument is not `f32`.
    pub fn f32(&self, index: usize) -> Result<&[f32], KernelError> {
        match self.buffer(index)?.data() {
            BufferData::F32(v) => Ok(v),
            other => Err(KernelError::TypeMismatch {
                index,
                expected: ElemType::F32,
                actual: other.elem_type(),
            }),
        }
    }

    /// Typed write access to an `f32` argument (copy-on-write).
    ///
    /// # Errors
    ///
    /// Fails on a bad index or if the argument is not `f32`.
    pub fn f32_mut(&mut self, index: usize) -> Result<&mut Vec<f32>, KernelError> {
        match self.buffer_mut(index)?.data_mut()? {
            BufferData::F32(v) => Ok(v),
            other => Err(KernelError::TypeMismatch {
                index,
                expected: ElemType::F32,
                actual: other.elem_type(),
            }),
        }
    }

    /// Typed read access to a `u32` argument.
    ///
    /// # Errors
    ///
    /// Fails on a bad index or if the argument is not `u32`.
    pub fn u32(&self, index: usize) -> Result<&[u32], KernelError> {
        match self.buffer(index)?.data() {
            BufferData::U32(v) => Ok(v),
            other => Err(KernelError::TypeMismatch {
                index,
                expected: ElemType::U32,
                actual: other.elem_type(),
            }),
        }
    }

    /// Typed write access to a `u32` argument (copy-on-write).
    ///
    /// # Errors
    ///
    /// Fails on a bad index or if the argument is not `u32`.
    pub fn u32_mut(&mut self, index: usize) -> Result<&mut Vec<u32>, KernelError> {
        match self.buffer_mut(index)?.data_mut()? {
            BufferData::U32(v) => Ok(v),
            other => Err(KernelError::TypeMismatch {
                index,
                expected: ElemType::U32,
                actual: other.elem_type(),
            }),
        }
    }

    /// Typed read access to an `i32` argument.
    ///
    /// # Errors
    ///
    /// Fails on a bad index or if the argument is not `i32`.
    pub fn i32(&self, index: usize) -> Result<&[i32], KernelError> {
        match self.buffer(index)?.data() {
            BufferData::I32(v) => Ok(v),
            other => Err(KernelError::TypeMismatch {
                index,
                expected: ElemType::I32,
                actual: other.elem_type(),
            }),
        }
    }

    /// Typed write access to an `i32` argument (copy-on-write).
    ///
    /// # Errors
    ///
    /// Fails on a bad index or if the argument is not `i32`.
    pub fn i32_mut(&mut self, index: usize) -> Result<&mut Vec<i32>, KernelError> {
        match self.buffer_mut(index)?.data_mut()? {
            BufferData::I32(v) => Ok(v),
            other => Err(KernelError::TypeMismatch {
                index,
                expected: ElemType::I32,
                actual: other.elem_type(),
            }),
        }
    }

    /// Typed read access to an `f64` argument.
    ///
    /// # Errors
    ///
    /// Fails on a bad index or if the argument is not `f64`.
    pub fn f64(&self, index: usize) -> Result<&[f64], KernelError> {
        match self.buffer(index)?.data() {
            BufferData::F64(v) => Ok(v),
            other => Err(KernelError::TypeMismatch {
                index,
                expected: ElemType::F64,
                actual: other.elem_type(),
            }),
        }
    }

    /// Typed write access to an `f64` argument (copy-on-write).
    ///
    /// # Errors
    ///
    /// Fails on a bad index or if the argument is not `f64`.
    pub fn f64_mut(&mut self, index: usize) -> Result<&mut Vec<f64>, KernelError> {
        match self.buffer_mut(index)?.data_mut()? {
            BufferData::F64(v) => Ok(v),
            other => Err(KernelError::TypeMismatch {
                index,
                expected: ElemType::F64,
                actual: other.elem_type(),
            }),
        }
    }

    /// Creates a sandbox view: all arguments shared, except the listed
    /// output arguments which become private sandbox copies (fresh address,
    /// copy-on-write payload).
    ///
    /// # Errors
    ///
    /// Fails if an index in `sandbox_args` is out of range.
    pub fn sandbox_view(&self, sandbox_args: &[usize]) -> Result<Args, KernelError> {
        let mut out = self.clone();
        for &i in sandbox_args {
            let fresh = out.buffer(i)?.sandbox_clone();
            out.bufs[i] = fresh;
        }
        Ok(out)
    }

    /// Bytes of extra space a sandbox over `sandbox_args` would pin once
    /// fully written (worst case: full copies of each listed output).
    ///
    /// # Errors
    ///
    /// Fails if an index in `sandbox_args` is out of range.
    pub fn sandbox_bytes(&self, sandbox_args: &[usize]) -> Result<u64, KernelError> {
        sandbox_args
            .iter()
            .try_fold(0u64, |acc, &i| Ok(acc + self.buffer(i)?.size_bytes()))
    }

    /// Adopts the listed buffers from `winner` (swap-based profiling: the
    /// winning private output becomes the final output).
    ///
    /// # Errors
    ///
    /// Fails if an index is out of range in either argument set.
    pub fn adopt_outputs(
        &mut self,
        winner: &mut Args,
        output_args: &[usize],
    ) -> Result<(), KernelError> {
        for &i in output_args {
            let src = winner.buffer_mut(i)?;
            let dst = self.buffer_mut(i).expect("same arity");
            dst.swap_with(src);
        }
        Ok(())
    }
}

impl FromIterator<Buffer> for Args {
    fn from_iter<T: IntoIterator<Item = Buffer>>(iter: T) -> Self {
        Args {
            bufs: iter.into_iter().collect(),
        }
    }
}

impl Extend<Buffer> for Args {
    fn extend<T: IntoIterator<Item = Buffer>>(&mut self, iter: T) {
        self.bufs.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args2() -> Args {
        let mut a = Args::new();
        a.push(Buffer::f32("out", vec![0.0; 4], Space::Global));
        a.push(Buffer::u32("in", vec![1, 2, 3, 4], Space::Global));
        a
    }

    #[test]
    fn addresses_are_unique_and_aligned() {
        let a = Buffer::f32("a", vec![0.0; 100], Space::Global);
        let b = Buffer::f32("b", vec![0.0; 100], Space::Global);
        assert_ne!(a.addr(), b.addr());
        assert_eq!(a.addr() % 256, 0);
    }

    #[test]
    fn typed_access_checks_type() {
        let a = args2();
        assert!(a.f32(0).is_ok());
        assert!(matches!(
            a.f32(1),
            Err(KernelError::TypeMismatch { index: 1, .. })
        ));
        assert!(matches!(a.f32(9), Err(KernelError::BadArgIndex { .. })));
    }

    #[test]
    fn cow_write_does_not_leak_into_clone() {
        let mut a = args2();
        let snapshot = a.clone();
        a.f32_mut(0).unwrap()[0] = 7.0;
        assert_eq!(snapshot.f32(0).unwrap()[0], 0.0);
        assert_eq!(a.f32(0).unwrap()[0], 7.0);
    }

    #[test]
    fn sandbox_view_isolates_outputs_and_shares_inputs() {
        let a = args2();
        let mut sb = a.sandbox_view(&[0]).unwrap();
        // Output got a fresh address, input kept its address.
        assert_ne!(sb.buffer(0).unwrap().addr(), a.buffer(0).unwrap().addr());
        assert_eq!(sb.buffer(1).unwrap().addr(), a.buffer(1).unwrap().addr());
        // Writing the sandbox output leaves the original untouched.
        sb.f32_mut(0).unwrap()[2] = 9.0;
        assert_eq!(a.f32(0).unwrap()[2], 0.0);
    }

    #[test]
    fn sandbox_bytes_counts_output_payload() {
        let a = args2();
        assert_eq!(a.sandbox_bytes(&[0]).unwrap(), 16);
        assert_eq!(a.sandbox_bytes(&[0, 1]).unwrap(), 32);
    }

    #[test]
    fn adopt_outputs_swaps_payload() {
        let mut a = args2();
        let mut w = a.sandbox_view(&[0]).unwrap();
        w.f32_mut(0).unwrap().copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        a.adopt_outputs(&mut w, &[0]).unwrap();
        assert_eq!(a.f32(0).unwrap(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn collect_into_args() {
        let a: Args = (0..3)
            .map(|i| Buffer::f32(format!("b{i}"), vec![0.0], Space::Global))
            .collect();
        assert_eq!(a.len(), 3);
    }
}
