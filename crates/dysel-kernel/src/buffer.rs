//! Typed device buffers and kernel argument sets.
//!
//! Buffers carry a virtual base address (used by the device cache models),
//! a memory-[`Space`] binding and copy-on-write storage. Copy-on-write is
//! what makes the sandbox / private-output mechanics of hybrid- and
//! swap-based partial-productive profiling cheap: a sandbox [`Args`] shares
//! every input buffer with the original and only the written output buffers
//! are actually duplicated.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::dirty::DirtyRanges;
use crate::{KernelError, Space};

/// Virtual-address bump allocator. Buffers never share cache lines.
static NEXT_ADDR: AtomicU64 = AtomicU64::new(0x1000);

// 256-byte alignment mirrors typical device allocator granularity and
// keeps distinct buffers in distinct 128-byte coalescing segments.
fn aligned_size(bytes: u64) -> u64 {
    bytes.div_ceil(256).max(1) * 256
}

fn alloc_addr(bytes: u64) -> u64 {
    NEXT_ADDR.fetch_add(aligned_size(bytes), Ordering::Relaxed)
}

/// A private virtual-address space: the same bump allocation the global
/// allocator performs, but owned by one caller instead of the process.
///
/// The device cache models hash buffer base addresses into lines and
/// sets, so a launch's priced cost depends on where its buffers sit.
/// With the process-global allocator, those addresses are a function of
/// every allocation any thread has performed so far — harmless for a
/// single-threaded run, but it makes one runtime's virtual timeline
/// sensitive to unrelated concurrent allocations. Re-addressing a
/// launch's buffers from a private `AddrSpace` (see
/// [`Args::rebase_in`]) makes the timeline a pure function of that
/// space's own allocation history, which is what lets a shared launch
/// service replay bit-identically to a serial run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddrSpace {
    next: u64,
}

impl AddrSpace {
    /// A fresh address space, starting where the global allocator starts.
    pub fn new() -> Self {
        AddrSpace { next: 0x1000 }
    }

    /// Allocates `bytes` (256-byte aligned) and returns the base address.
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        let addr = self.next;
        self.next += aligned_size(bytes);
        addr
    }
}

impl Default for AddrSpace {
    fn default() -> Self {
        AddrSpace::new()
    }
}

/// Element type tag of a [`Buffer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElemType {
    /// 32-bit float.
    F32,
    /// 64-bit float.
    F64,
    /// 32-bit unsigned integer.
    U32,
    /// 32-bit signed integer.
    I32,
}

impl ElemType {
    /// Size of one element in bytes.
    pub fn size_bytes(self) -> u64 {
        match self {
            ElemType::F32 | ElemType::U32 | ElemType::I32 => 4,
            ElemType::F64 => 8,
        }
    }
}

impl fmt::Display for ElemType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ElemType::F32 => "f32",
            ElemType::F64 => "f64",
            ElemType::U32 => "u32",
            ElemType::I32 => "i32",
        };
        f.write_str(s)
    }
}

/// Owned, typed storage behind a buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum BufferData {
    /// 32-bit float payload.
    F32(Vec<f32>),
    /// 64-bit float payload.
    F64(Vec<f64>),
    /// 32-bit unsigned integer payload.
    U32(Vec<u32>),
    /// 32-bit signed integer payload.
    I32(Vec<i32>),
}

impl BufferData {
    /// Element type tag.
    pub fn elem_type(&self) -> ElemType {
        match self {
            BufferData::F32(_) => ElemType::F32,
            BufferData::F64(_) => ElemType::F64,
            BufferData::U32(_) => ElemType::U32,
            BufferData::I32(_) => ElemType::I32,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            BufferData::F32(v) => v.len(),
            BufferData::F64(v) => v.len(),
            BufferData::U32(v) => v.len(),
            BufferData::I32(v) => v.len(),
        }
    }

    /// Whether the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total payload size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.len() as u64 * self.elem_type().size_bytes()
    }
}

/// A device buffer: named, typed storage with a virtual base address and a
/// default memory-space binding.
///
/// Cloning a `Buffer` is cheap (the payload is reference-counted); the clone
/// receives a fresh virtual address, matching what a real allocator would do
/// for a sandbox copy. Payload duplication only happens on first write to a
/// shared buffer.
///
/// # Example
///
/// ```
/// use dysel_kernel::{Buffer, Space};
/// let mut b = Buffer::f32("x", vec![1.0, 2.0], Space::Global);
/// let snapshot = b.clone();
/// b.data_mut().and_then(|_| Ok(())).unwrap();
/// assert_eq!(snapshot.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Buffer {
    name: String,
    data: Arc<BufferData>,
    space: Space,
    addr: u64,
}

impl Buffer {
    /// Creates a buffer from raw [`BufferData`].
    pub fn new(name: impl Into<String>, data: BufferData, space: Space) -> Self {
        let addr = alloc_addr(data.size_bytes());
        Buffer {
            name: name.into(),
            data: Arc::new(data),
            space,
            addr,
        }
    }

    /// Creates an `f32` buffer.
    pub fn f32(name: impl Into<String>, data: Vec<f32>, space: Space) -> Self {
        Buffer::new(name, BufferData::F32(data), space)
    }

    /// Creates an `f64` buffer.
    pub fn f64(name: impl Into<String>, data: Vec<f64>, space: Space) -> Self {
        Buffer::new(name, BufferData::F64(data), space)
    }

    /// Creates a `u32` buffer.
    pub fn u32(name: impl Into<String>, data: Vec<u32>, space: Space) -> Self {
        Buffer::new(name, BufferData::U32(data), space)
    }

    /// Creates an `i32` buffer.
    pub fn i32(name: impl Into<String>, data: Vec<i32>, space: Space) -> Self {
        Buffer::new(name, BufferData::I32(data), space)
    }

    /// Buffer name (for reports and debugging).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Virtual base address.
    pub fn addr(&self) -> u64 {
        self.addr
    }

    /// Default memory-space binding.
    pub fn space(&self) -> Space {
        self.space
    }

    /// Rebinds the default memory space.
    pub fn set_space(&mut self, space: Space) {
        self.space = space;
    }

    /// Element type.
    pub fn elem_type(&self) -> ElemType {
        self.data.elem_type()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Payload size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.data.size_bytes()
    }

    /// Shared view of the payload.
    pub fn data(&self) -> &BufferData {
        &self.data
    }

    /// Mutable view of the payload (clones if shared).
    ///
    /// # Errors
    ///
    /// Never fails today; returns `Result` to keep room for write-protected
    /// spaces.
    pub fn data_mut(&mut self) -> Result<&mut BufferData, KernelError> {
        Ok(Arc::make_mut(&mut self.data))
    }

    /// Whether this buffer currently shares its payload with another.
    pub fn is_shared(&self) -> bool {
        Arc::strong_count(&self.data) > 1
    }

    /// Makes a sandbox copy: shares the payload (copy-on-write) but takes a
    /// fresh virtual address, as a real private allocation would.
    pub fn sandbox_clone(&self) -> Buffer {
        let mut b = self.clone();
        b.addr = alloc_addr(b.size_bytes());
        b.name = format!("{}#sandbox", self.name);
        b
    }

    /// [`Buffer::sandbox_clone`], allocating from a private [`AddrSpace`]
    /// instead of the process-global allocator.
    pub fn sandbox_clone_in(&self, space: &mut AddrSpace) -> Buffer {
        let mut b = self.clone();
        b.addr = space.alloc(b.size_bytes());
        b.name = format!("{}#sandbox", self.name);
        b
    }

    /// Re-addresses this buffer from a private [`AddrSpace`]. Payload,
    /// name and space binding are untouched.
    pub fn rebase_in(&mut self, space: &mut AddrSpace) {
        self.addr = space.alloc(self.size_bytes());
    }

    /// Swaps payload and address with another buffer (swap-based profiling).
    pub fn swap_with(&mut self, other: &mut Buffer) {
        std::mem::swap(&mut self.data, &mut other.data);
        std::mem::swap(&mut self.addr, &mut other.addr);
    }

    /// Whether `self` and `other` share the same payload allocation.
    pub fn shares_payload_with(&self, other: &Buffer) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// Re-points this buffer's payload at `src`'s payload (copy-on-write
    /// share). The address and name stay as they are — this is how a leased
    /// sandbox buffer is refreshed with current data without reallocating.
    pub fn share_payload_from(&mut self, src: &Buffer) {
        self.data = Arc::clone(&src.data);
    }

    /// Merges a worker's writes into this buffer.
    ///
    /// `executed` is a worker-side copy that started from `pristine` (the
    /// pre-launch snapshot) and was mutated by running some work-groups.
    /// With `additive = false` every element whose bits differ from the
    /// pristine value overwrites the target (disjoint-output kernels: each
    /// element is written by at most one span, so span order is last-wins
    /// and matches serial execution). With `additive = true` the *delta*
    /// `executed - pristine` is added onto the target (accumulating kernels
    /// such as histogram: integer deltas compose exactly under wrapping
    /// arithmetic regardless of span order).
    ///
    /// # Errors
    ///
    /// Fails if the three buffers disagree on element type or length.
    pub fn merge_span(
        &mut self,
        executed: &Buffer,
        pristine: &Buffer,
        additive: bool,
    ) -> Result<(), KernelError> {
        if executed.shares_payload_with(pristine) {
            return Ok(()); // copy-on-write never triggered: no writes.
        }
        // Dirty-range narrowing: locate the changed window once with the
        // chunked scan, then run the per-element merge over it alone — a
        // span that wrote 32 rows of a megabyte buffer merges 32 rows.
        let Some((w0, w1)) = executed.dirty_window(pristine)? else {
            return Ok(()); // written, but with bit-identical values
        };
        let mismatch = |index| KernelError::TypeMismatch {
            index,
            expected: pristine.elem_type(),
            actual: executed.elem_type(),
        };
        match (
            Arc::make_mut(&mut self.data),
            executed.data(),
            pristine.data(),
        ) {
            (BufferData::F32(t), BufferData::F32(e), BufferData::F32(p)) => {
                let (lo, hi) = clamp_window(w0, w1, t.len());
                merge_float(
                    &mut t[lo..hi],
                    &e[lo..hi],
                    &p[lo..hi],
                    additive,
                    |a, b| a + b,
                    |a, b| a - b,
                )
            }
            (BufferData::F64(t), BufferData::F64(e), BufferData::F64(p)) => {
                let (lo, hi) = clamp_window(w0, w1, t.len());
                merge_float(
                    &mut t[lo..hi],
                    &e[lo..hi],
                    &p[lo..hi],
                    additive,
                    |a, b| a + b,
                    |a, b| a - b,
                )
            }
            (BufferData::U32(t), BufferData::U32(e), BufferData::U32(p)) => {
                let (lo, hi) = clamp_window(w0, w1, t.len());
                merge_int(&mut t[lo..hi], &e[lo..hi], &p[lo..hi], additive)
            }
            (BufferData::I32(t), BufferData::I32(e), BufferData::I32(p)) => {
                let (lo, hi) = clamp_window(w0, w1, t.len());
                merge_int(&mut t[lo..hi], &e[lo..hi], &p[lo..hi], additive)
            }
            _ => return Err(mismatch(0)),
        }
        Ok(())
    }

    /// Tampers with every element whose bits differ between `executed` and
    /// `pristine` — i.e. exactly the elements a launch wrote. With
    /// `poison = false` the written value is bit-flipped (a plausible but
    /// wrong result); with `poison = true` it becomes NaN (floats) or a
    /// sentinel (integers). Returns the number of tampered elements.
    ///
    /// This is the device fault injector's `WrongOutput`/`Poison` write
    /// path; it deliberately mirrors [`Buffer::merge_span`]'s change
    /// detection so only genuinely-written elements are corrupted.
    ///
    /// # Errors
    ///
    /// Fails if the buffers disagree on element type.
    pub fn corrupt_changed(
        &mut self,
        executed: &Buffer,
        pristine: &Buffer,
        poison: bool,
    ) -> Result<u64, KernelError> {
        if executed.shares_payload_with(pristine) {
            return Ok(0); // copy-on-write never triggered: no writes.
        }
        // Same dirty-range narrowing as `merge_span`: only the changed
        // window can hold written elements.
        let Some((w0, w1)) = executed.dirty_window(pristine)? else {
            return Ok(0);
        };
        let mismatch = |index| KernelError::TypeMismatch {
            index,
            expected: pristine.elem_type(),
            actual: executed.elem_type(),
        };
        let mut tampered = 0u64;
        match (
            Arc::make_mut(&mut self.data),
            executed.data(),
            pristine.data(),
        ) {
            (BufferData::F32(t), BufferData::F32(e), BufferData::F32(p)) => {
                let (lo, hi) = clamp_window(w0, w1, t.len());
                for ((t, &e), &p) in t[lo..hi].iter_mut().zip(&e[lo..hi]).zip(&p[lo..hi]) {
                    if e.to_bits() != p.to_bits() {
                        *t = if poison {
                            f32::NAN
                        } else {
                            f32::from_bits(e.to_bits() ^ 0x0040_0001)
                        };
                        tampered += 1;
                    }
                }
            }
            (BufferData::F64(t), BufferData::F64(e), BufferData::F64(p)) => {
                let (lo, hi) = clamp_window(w0, w1, t.len());
                for ((t, &e), &p) in t[lo..hi].iter_mut().zip(&e[lo..hi]).zip(&p[lo..hi]) {
                    if e.to_bits() != p.to_bits() {
                        *t = if poison {
                            f64::NAN
                        } else {
                            f64::from_bits(e.to_bits() ^ 0x0000_0000_0010_0001)
                        };
                        tampered += 1;
                    }
                }
            }
            (BufferData::U32(t), BufferData::U32(e), BufferData::U32(p)) => {
                let (lo, hi) = clamp_window(w0, w1, t.len());
                for ((t, &e), &p) in t[lo..hi].iter_mut().zip(&e[lo..hi]).zip(&p[lo..hi]) {
                    if e != p {
                        *t = if poison { u32::MAX } else { e ^ 0xDEAD_BEEF };
                        tampered += 1;
                    }
                }
            }
            (BufferData::I32(t), BufferData::I32(e), BufferData::I32(p)) => {
                let (lo, hi) = clamp_window(w0, w1, t.len());
                for ((t, &e), &p) in t[lo..hi].iter_mut().zip(&e[lo..hi]).zip(&p[lo..hi]) {
                    if e != p {
                        *t = if poison { i32::MIN } else { e ^ 0x5EED_0BAD };
                        tampered += 1;
                    }
                }
            }
            _ => return Err(mismatch(0)),
        }
        Ok(tampered)
    }

    /// FNV-1a digest over `(index, bits)` of every element whose bits
    /// differ from `pristine`. Two buffers that started from the same
    /// pristine data digest equal iff they wrote the same elements with
    /// the same bit patterns — the sandbox cross-check primitive.
    ///
    /// # Errors
    ///
    /// Fails if the buffers disagree on element type.
    pub fn changed_digest(&self, pristine: &Buffer) -> Result<u64, KernelError> {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        if self.shares_payload_with(pristine) {
            return Ok(OFFSET); // no writes: digest of the empty change set.
        }
        // Dirty-range narrowing: the fold only visits the changed window,
        // with indices kept global so the digest value is unchanged.
        let Some((w0, w1)) = self.dirty_window(pristine)? else {
            return Ok(OFFSET);
        };
        let mut h = OFFSET;
        let mut fold = |i: u64, bits: u64| {
            for b in i.to_le_bytes().into_iter().chain(bits.to_le_bytes()) {
                h = (h ^ u64::from(b)).wrapping_mul(PRIME);
            }
        };
        match (self.data(), pristine.data()) {
            (BufferData::F32(a), BufferData::F32(p)) => {
                for (i, (&a, &p)) in a[w0..w1].iter().zip(&p[w0..w1]).enumerate() {
                    if a.to_bits() != p.to_bits() {
                        fold((w0 + i) as u64, u64::from(a.to_bits()));
                    }
                }
            }
            (BufferData::F64(a), BufferData::F64(p)) => {
                for (i, (&a, &p)) in a[w0..w1].iter().zip(&p[w0..w1]).enumerate() {
                    if a.to_bits() != p.to_bits() {
                        fold((w0 + i) as u64, a.to_bits());
                    }
                }
            }
            (BufferData::U32(a), BufferData::U32(p)) => {
                for (i, (&a, &p)) in a[w0..w1].iter().zip(&p[w0..w1]).enumerate() {
                    if a != p {
                        fold((w0 + i) as u64, u64::from(a));
                    }
                }
            }
            (BufferData::I32(a), BufferData::I32(p)) => {
                for (i, (&a, &p)) in a[w0..w1].iter().zip(&p[w0..w1]).enumerate() {
                    if a != p {
                        fold((w0 + i) as u64, u64::from(a as u32));
                    }
                }
            }
            _ => unreachable!("dirty_window checked element types"),
        }
        Ok(h)
    }

    /// Whether any element's bits differ from `other`'s.
    ///
    /// # Errors
    ///
    /// Fails if the buffers disagree on element type.
    pub fn bits_differ(&self, other: &Buffer) -> Result<bool, KernelError> {
        if self.shares_payload_with(other) {
            return Ok(false);
        }
        let mismatch = |index| KernelError::TypeMismatch {
            index,
            expected: other.elem_type(),
            actual: self.elem_type(),
        };
        match data_first_diff(self.data(), other.data()) {
            Some(d) => Ok(self.len() != other.len() || d.is_some()),
            None => Err(mismatch(0)),
        }
    }

    /// Half-open element window `[first, last+1)` outside which `self` and
    /// `pristine` are bit-identical, or `None` when they agree everywhere.
    /// Found by a chunked OR-of-XOR scan from both ends; the expensive
    /// per-element paths (merge, digest, corruption) only walk this window
    /// — i.e. the bytes a span actually touched.
    ///
    /// # Errors
    ///
    /// Fails if the buffers disagree on element type.
    pub fn dirty_window(&self, pristine: &Buffer) -> Result<Option<(usize, usize)>, KernelError> {
        if self.shares_payload_with(pristine) {
            return Ok(None);
        }
        data_diff_window(self.data(), pristine.data()).ok_or(KernelError::TypeMismatch {
            index: 0,
            expected: pristine.elem_type(),
            actual: self.elem_type(),
        })
    }

    /// Copies `src`'s elements into `self` over exactly the given dirty
    /// ranges (clamped to both payload lengths); everything outside stays
    /// untouched. Returns the number of elements copied.
    ///
    /// This is the dirty-range restore primitive: instead of dropping a
    /// reused allocation and duplicating the whole payload, a restore
    /// replays only the ranges that are known (or were measured via
    /// [`Buffer::dirty_window`]) to differ.
    ///
    /// # Errors
    ///
    /// Fails if the buffers disagree on element type.
    pub fn restore_ranges_from(
        &mut self,
        src: &Buffer,
        dirty: &DirtyRanges,
    ) -> Result<u64, KernelError> {
        if self.shares_payload_with(src) || dirty.is_empty() {
            return Ok(0);
        }
        fn copy<T: Copy>(t: &mut [T], s: &[T], dirty: &DirtyRanges) -> u64 {
            let n = t.len().min(s.len());
            let mut copied = 0;
            for (a, b) in dirty.iter() {
                let a = (a as usize).min(n);
                let b = (b as usize).min(n);
                if a < b {
                    t[a..b].copy_from_slice(&s[a..b]);
                    copied += (b - a) as u64;
                }
            }
            copied
        }
        let mismatch = KernelError::TypeMismatch {
            index: 0,
            expected: src.elem_type(),
            actual: self.elem_type(),
        };
        let copied = match (Arc::make_mut(&mut self.data), src.data()) {
            (BufferData::F32(t), BufferData::F32(s)) => copy(t, s, dirty),
            (BufferData::F64(t), BufferData::F64(s)) => copy(t, s, dirty),
            (BufferData::U32(t), BufferData::U32(s)) => copy(t, s, dirty),
            (BufferData::I32(t), BufferData::I32(s)) => copy(t, s, dirty),
            _ => return Err(mismatch),
        };
        Ok(copied)
    }
}

/// Clamps a dirty window to a target length, keeping `lo <= hi` so empty
/// windows slice safely.
fn clamp_window(w0: usize, w1: usize, len: usize) -> (usize, usize) {
    let hi = w1.min(len);
    (w0.min(hi), hi)
}

/// Width of the chunked bit-compare used to locate dirty windows. Eight
/// 32-bit lanes fill one AVX2 register; the OR-of-XOR reduction per chunk
/// compiles to branch-free vector code.
const DIFF_LANES: usize = 8;

/// Index of the first element whose bits differ, scanning forward one
/// `DIFF_LANES` chunk at a time.
#[inline]
fn first_diff<T, B>(a: &[T], b: &[T], bits: impl Fn(T) -> B + Copy) -> Option<usize>
where
    T: Copy,
    B: Copy + Eq + Default + std::ops::BitXor<Output = B> + std::ops::BitOr<Output = B>,
{
    let n = a.len().min(b.len());
    let zero = B::default();
    let mut i = 0;
    while i + DIFF_LANES <= n {
        let mut acc = zero;
        for k in 0..DIFF_LANES {
            acc = acc | (bits(a[i + k]) ^ bits(b[i + k]));
        }
        if acc != zero {
            return (i..i + DIFF_LANES).find(|&j| bits(a[j]) != bits(b[j]));
        }
        i += DIFF_LANES;
    }
    (i..n).find(|&j| bits(a[j]) != bits(b[j]))
}

/// Index one past the last differing element, scanning backward in
/// `DIFF_LANES` chunks; `first` is a known differing index (scan floor).
#[inline]
fn after_last_diff<T, B>(a: &[T], b: &[T], bits: impl Fn(T) -> B + Copy, first: usize) -> usize
where
    T: Copy,
    B: Copy + Eq + Default + std::ops::BitXor<Output = B> + std::ops::BitOr<Output = B>,
{
    let n = a.len().min(b.len());
    let zero = B::default();
    let mut j = n;
    // Chunks that lie entirely above `first` can be skipped when clean.
    while j > first + DIFF_LANES {
        let s = j - DIFF_LANES;
        let mut acc = zero;
        for k in 0..DIFF_LANES {
            acc = acc | (bits(a[s + k]) ^ bits(b[s + k]));
        }
        if acc != zero {
            let last = (s..j)
                .rev()
                .find(|&x| bits(a[x]) != bits(b[x]))
                .expect("chunk contains a diff");
            return last + 1;
        }
        j = s;
    }
    let last = (first..j)
        .rev()
        .find(|&x| bits(a[x]) != bits(b[x]))
        .unwrap_or(first);
    last + 1
}

/// Half-open window `[first, last+1)` outside which the slices are
/// bit-identical, or `None` when they agree everywhere.
fn diff_window<T, B>(a: &[T], b: &[T], bits: impl Fn(T) -> B + Copy) -> Option<(usize, usize)>
where
    T: Copy,
    B: Copy + Eq + Default + std::ops::BitXor<Output = B> + std::ops::BitOr<Output = B>,
{
    let first = first_diff(a, b, bits)?;
    Some((first, after_last_diff(a, b, bits, first)))
}

/// Typed dispatch for [`diff_window`]. Outer `None` means the payloads
/// disagree on element type.
fn data_diff_window(a: &BufferData, b: &BufferData) -> Option<Option<(usize, usize)>> {
    let w = match (a, b) {
        (BufferData::F32(x), BufferData::F32(y)) => diff_window(x, y, f32::to_bits),
        (BufferData::F64(x), BufferData::F64(y)) => diff_window(x, y, f64::to_bits),
        (BufferData::U32(x), BufferData::U32(y)) => diff_window(x, y, |v: u32| v),
        (BufferData::I32(x), BufferData::I32(y)) => diff_window(x, y, |v: i32| v as u32),
        _ => return None,
    };
    Some(w)
}

/// Typed dispatch for [`first_diff`]. Outer `None` means the payloads
/// disagree on element type.
fn data_first_diff(a: &BufferData, b: &BufferData) -> Option<Option<usize>> {
    let d = match (a, b) {
        (BufferData::F32(x), BufferData::F32(y)) => first_diff(x, y, f32::to_bits),
        (BufferData::F64(x), BufferData::F64(y)) => first_diff(x, y, f64::to_bits),
        (BufferData::U32(x), BufferData::U32(y)) => first_diff(x, y, |v: u32| v),
        (BufferData::I32(x), BufferData::I32(y)) => first_diff(x, y, |v: i32| v as u32),
        _ => return None,
    };
    Some(d)
}

/// Bitwise change detection for floats: `to_bits` comparison catches NaN
/// payloads and signed zeros that `==` would miss.
fn merge_float<T: Copy + PartialEq + FloatBits>(
    target: &mut [T],
    executed: &[T],
    pristine: &[T],
    additive: bool,
    add: impl Fn(T, T) -> T,
    sub: impl Fn(T, T) -> T,
) {
    for ((t, &e), &p) in target.iter_mut().zip(executed).zip(pristine) {
        if e.bits() == p.bits() {
            continue;
        }
        if additive {
            *t = add(*t, sub(e, p));
        } else {
            *t = e;
        }
    }
}

fn merge_int<T: Copy + PartialEq + WrappingArith>(
    target: &mut [T],
    executed: &[T],
    pristine: &[T],
    additive: bool,
) {
    for ((t, &e), &p) in target.iter_mut().zip(executed).zip(pristine) {
        if e == p {
            continue;
        }
        if additive {
            *t = t.wrapping_add(e.wrapping_sub(p));
        } else {
            *t = e;
        }
    }
}

trait FloatBits {
    fn bits(self) -> u64;
}

impl FloatBits for f32 {
    fn bits(self) -> u64 {
        u64::from(self.to_bits())
    }
}

impl FloatBits for f64 {
    fn bits(self) -> u64 {
        self.to_bits()
    }
}

trait WrappingArith {
    fn wrapping_add(self, rhs: Self) -> Self;
    fn wrapping_sub(self, rhs: Self) -> Self;
}

impl WrappingArith for u32 {
    fn wrapping_add(self, rhs: Self) -> Self {
        u32::wrapping_add(self, rhs)
    }
    fn wrapping_sub(self, rhs: Self) -> Self {
        u32::wrapping_sub(self, rhs)
    }
}

impl WrappingArith for i32 {
    fn wrapping_add(self, rhs: Self) -> Self {
        i32::wrapping_add(self, rhs)
    }
    fn wrapping_sub(self, rhs: Self) -> Self {
        i32::wrapping_sub(self, rhs)
    }
}

/// The argument set handed to a kernel launch: an ordered list of buffers.
///
/// Argument indices are the kernel-facing names; metadata such as
/// [`crate::VariantMeta::sandbox_args`] refers to these indices.
#[derive(Debug, Clone, Default)]
pub struct Args {
    bufs: Vec<Buffer>,
}

impl Args {
    /// Creates an empty argument set.
    pub fn new() -> Self {
        Args::default()
    }

    /// Appends a buffer, returning its argument index.
    pub fn push(&mut self, buf: Buffer) -> usize {
        self.bufs.push(buf);
        self.bufs.len() - 1
    }

    /// Number of arguments.
    pub fn len(&self) -> usize {
        self.bufs.len()
    }

    /// Whether there are no arguments.
    pub fn is_empty(&self) -> bool {
        self.bufs.is_empty()
    }

    /// Borrow an argument buffer.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::BadArgIndex`] if `index` is out of range.
    pub fn buffer(&self, index: usize) -> Result<&Buffer, KernelError> {
        self.bufs.get(index).ok_or(KernelError::BadArgIndex {
            index,
            len: self.bufs.len(),
        })
    }

    /// Mutably borrow an argument buffer.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::BadArgIndex`] if `index` is out of range.
    pub fn buffer_mut(&mut self, index: usize) -> Result<&mut Buffer, KernelError> {
        let len = self.bufs.len();
        self.bufs
            .get_mut(index)
            .ok_or(KernelError::BadArgIndex { index, len })
    }

    /// Iterate over the buffers.
    pub fn iter(&self) -> std::slice::Iter<'_, Buffer> {
        self.bufs.iter()
    }

    /// Typed read access to an `f32` argument.
    ///
    /// # Errors
    ///
    /// Fails on a bad index or if the argument is not `f32`.
    pub fn f32(&self, index: usize) -> Result<&[f32], KernelError> {
        match self.buffer(index)?.data() {
            BufferData::F32(v) => Ok(v),
            other => Err(KernelError::TypeMismatch {
                index,
                expected: ElemType::F32,
                actual: other.elem_type(),
            }),
        }
    }

    /// Typed write access to an `f32` argument (copy-on-write).
    ///
    /// # Errors
    ///
    /// Fails on a bad index or if the argument is not `f32`.
    pub fn f32_mut(&mut self, index: usize) -> Result<&mut Vec<f32>, KernelError> {
        match self.buffer_mut(index)?.data_mut()? {
            BufferData::F32(v) => Ok(v),
            other => Err(KernelError::TypeMismatch {
                index,
                expected: ElemType::F32,
                actual: other.elem_type(),
            }),
        }
    }

    /// Typed read access to a `u32` argument.
    ///
    /// # Errors
    ///
    /// Fails on a bad index or if the argument is not `u32`.
    pub fn u32(&self, index: usize) -> Result<&[u32], KernelError> {
        match self.buffer(index)?.data() {
            BufferData::U32(v) => Ok(v),
            other => Err(KernelError::TypeMismatch {
                index,
                expected: ElemType::U32,
                actual: other.elem_type(),
            }),
        }
    }

    /// Typed write access to a `u32` argument (copy-on-write).
    ///
    /// # Errors
    ///
    /// Fails on a bad index or if the argument is not `u32`.
    pub fn u32_mut(&mut self, index: usize) -> Result<&mut Vec<u32>, KernelError> {
        match self.buffer_mut(index)?.data_mut()? {
            BufferData::U32(v) => Ok(v),
            other => Err(KernelError::TypeMismatch {
                index,
                expected: ElemType::U32,
                actual: other.elem_type(),
            }),
        }
    }

    /// Typed read access to an `i32` argument.
    ///
    /// # Errors
    ///
    /// Fails on a bad index or if the argument is not `i32`.
    pub fn i32(&self, index: usize) -> Result<&[i32], KernelError> {
        match self.buffer(index)?.data() {
            BufferData::I32(v) => Ok(v),
            other => Err(KernelError::TypeMismatch {
                index,
                expected: ElemType::I32,
                actual: other.elem_type(),
            }),
        }
    }

    /// Typed write access to an `i32` argument (copy-on-write).
    ///
    /// # Errors
    ///
    /// Fails on a bad index or if the argument is not `i32`.
    pub fn i32_mut(&mut self, index: usize) -> Result<&mut Vec<i32>, KernelError> {
        match self.buffer_mut(index)?.data_mut()? {
            BufferData::I32(v) => Ok(v),
            other => Err(KernelError::TypeMismatch {
                index,
                expected: ElemType::I32,
                actual: other.elem_type(),
            }),
        }
    }

    /// Typed read access to an `f64` argument.
    ///
    /// # Errors
    ///
    /// Fails on a bad index or if the argument is not `f64`.
    pub fn f64(&self, index: usize) -> Result<&[f64], KernelError> {
        match self.buffer(index)?.data() {
            BufferData::F64(v) => Ok(v),
            other => Err(KernelError::TypeMismatch {
                index,
                expected: ElemType::F64,
                actual: other.elem_type(),
            }),
        }
    }

    /// Typed write access to an `f64` argument (copy-on-write).
    ///
    /// # Errors
    ///
    /// Fails on a bad index or if the argument is not `f64`.
    pub fn f64_mut(&mut self, index: usize) -> Result<&mut Vec<f64>, KernelError> {
        match self.buffer_mut(index)?.data_mut()? {
            BufferData::F64(v) => Ok(v),
            other => Err(KernelError::TypeMismatch {
                index,
                expected: ElemType::F64,
                actual: other.elem_type(),
            }),
        }
    }

    /// Creates a sandbox view: all arguments shared, except the listed
    /// output arguments which become private sandbox copies (fresh address,
    /// copy-on-write payload).
    ///
    /// # Errors
    ///
    /// Fails if an index in `sandbox_args` is out of range.
    pub fn sandbox_view(&self, sandbox_args: &[usize]) -> Result<Args, KernelError> {
        let mut out = self.clone();
        for &i in sandbox_args {
            let fresh = out.buffer(i)?.sandbox_clone();
            out.bufs[i] = fresh;
        }
        Ok(out)
    }

    /// [`Args::sandbox_view`], drawing the sandbox copies' addresses from
    /// a private [`AddrSpace`] instead of the process-global allocator.
    ///
    /// # Errors
    ///
    /// Fails if an index in `sandbox_args` is out of range.
    pub fn sandbox_view_in(
        &self,
        sandbox_args: &[usize],
        space: &mut AddrSpace,
    ) -> Result<Args, KernelError> {
        let mut out = self.clone();
        for &i in sandbox_args {
            let fresh = out.buffer(i)?.sandbox_clone_in(space);
            out.bufs[i] = fresh;
        }
        Ok(out)
    }

    /// Re-addresses every buffer, in argument order, from a private
    /// [`AddrSpace`] (see [`AddrSpace`] for why). Payloads are untouched.
    pub fn rebase_in(&mut self, space: &mut AddrSpace) {
        for b in &mut self.bufs {
            b.rebase_in(space);
        }
    }

    /// Bytes of extra space a sandbox over `sandbox_args` would pin once
    /// fully written (worst case: full copies of each listed output).
    ///
    /// # Errors
    ///
    /// Fails if an index in `sandbox_args` is out of range.
    pub fn sandbox_bytes(&self, sandbox_args: &[usize]) -> Result<u64, KernelError> {
        sandbox_args
            .iter()
            .try_fold(0u64, |acc, &i| Ok(acc + self.buffer(i)?.size_bytes()))
    }

    /// Merges a worker-side execution of some work-groups back into this
    /// argument set (see [`Buffer::merge_span`]).
    ///
    /// Only the listed `output_args` are inspected; every other argument is
    /// read-only by contract (the kernel IR declares its outputs). Buffers
    /// the worker never wrote still share their payload with `pristine` and
    /// are skipped without touching a single element.
    ///
    /// # Errors
    ///
    /// Fails if an index in `output_args` is out of range.
    pub fn merge_outputs(
        &mut self,
        executed: &Args,
        pristine: &Args,
        output_args: &[usize],
        additive: bool,
    ) -> Result<(), KernelError> {
        for &i in output_args {
            let exec = executed.buffer(i)?;
            let prist = pristine.buffer(i)?;
            self.buffer_mut(i)?.merge_span(exec, prist, additive)?;
        }
        Ok(())
    }

    /// Refreshes a leased sandbox in place: every buffer re-shares `src`'s
    /// current payload (copy-on-write), while sandbox addresses and names
    /// are kept. After this call the set is indistinguishable, data-wise,
    /// from a fresh [`Args::sandbox_view`] of `src`.
    ///
    /// # Errors
    ///
    /// Fails if the two sets have different arity.
    pub fn refresh_from(&mut self, src: &Args) -> Result<(), KernelError> {
        if self.len() != src.len() {
            return Err(KernelError::BadArgIndex {
                index: src.len(),
                len: self.len(),
            });
        }
        for (dst, s) in self.bufs.iter_mut().zip(src.iter()) {
            dst.share_payload_from(s);
        }
        Ok(())
    }

    /// Adopts the listed buffers from `winner` (swap-based profiling: the
    /// winning private output becomes the final output).
    ///
    /// # Errors
    ///
    /// Fails if an index is out of range in either argument set.
    pub fn adopt_outputs(
        &mut self,
        winner: &mut Args,
        output_args: &[usize],
    ) -> Result<(), KernelError> {
        for &i in output_args {
            let src = winner.buffer_mut(i)?;
            let dst = self.buffer_mut(i).expect("same arity");
            dst.swap_with(src);
        }
        Ok(())
    }

    /// Tampers with every output element a launch wrote (see
    /// [`Buffer::corrupt_changed`]). Returns the tampered element count.
    ///
    /// # Errors
    ///
    /// Fails if an index in `output_args` is out of range or the sets
    /// disagree on types.
    pub fn corrupt_changed(
        &mut self,
        executed: &Args,
        pristine: &Args,
        output_args: &[usize],
        poison: bool,
    ) -> Result<u64, KernelError> {
        let mut tampered = 0;
        for &i in output_args {
            let exec = executed.buffer(i)?;
            let prist = pristine.buffer(i)?;
            tampered += self.buffer_mut(i)?.corrupt_changed(exec, prist, poison)?;
        }
        Ok(tampered)
    }

    /// Combined digest of the changes each listed output holds relative to
    /// `pristine` (see [`Buffer::changed_digest`]).
    ///
    /// # Errors
    ///
    /// Fails if an index in `output_args` is out of range or the sets
    /// disagree on types.
    pub fn changed_digest(
        &self,
        pristine: &Args,
        output_args: &[usize],
    ) -> Result<u64, KernelError> {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &i in output_args {
            let d = self.buffer(i)?.changed_digest(pristine.buffer(i)?)?;
            h = (h ^ d).wrapping_mul(0x0000_0100_0000_01b3);
        }
        Ok(h)
    }

    /// Whether any listed output's bits differ between the two sets (see
    /// [`Buffer::bits_differ`]).
    ///
    /// # Errors
    ///
    /// Fails if an index in `output_args` is out of range or the sets
    /// disagree on types.
    pub fn bits_differ(&self, other: &Args, output_args: &[usize]) -> Result<bool, KernelError> {
        for &i in output_args {
            if self.buffer(i)?.bits_differ(other.buffer(i)?)? {
                return Ok(true);
            }
        }
        Ok(false)
    }
}

impl FromIterator<Buffer> for Args {
    fn from_iter<T: IntoIterator<Item = Buffer>>(iter: T) -> Self {
        Args {
            bufs: iter.into_iter().collect(),
        }
    }
}

impl Extend<Buffer> for Args {
    fn extend<T: IntoIterator<Item = Buffer>>(&mut self, iter: T) {
        self.bufs.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args2() -> Args {
        let mut a = Args::new();
        a.push(Buffer::f32("out", vec![0.0; 4], Space::Global));
        a.push(Buffer::u32("in", vec![1, 2, 3, 4], Space::Global));
        a
    }

    #[test]
    fn addresses_are_unique_and_aligned() {
        let a = Buffer::f32("a", vec![0.0; 100], Space::Global);
        let b = Buffer::f32("b", vec![0.0; 100], Space::Global);
        assert_ne!(a.addr(), b.addr());
        assert_eq!(a.addr() % 256, 0);
    }

    #[test]
    fn typed_access_checks_type() {
        let a = args2();
        assert!(a.f32(0).is_ok());
        assert!(matches!(
            a.f32(1),
            Err(KernelError::TypeMismatch { index: 1, .. })
        ));
        assert!(matches!(a.f32(9), Err(KernelError::BadArgIndex { .. })));
    }

    #[test]
    fn cow_write_does_not_leak_into_clone() {
        let mut a = args2();
        let snapshot = a.clone();
        a.f32_mut(0).unwrap()[0] = 7.0;
        assert_eq!(snapshot.f32(0).unwrap()[0], 0.0);
        assert_eq!(a.f32(0).unwrap()[0], 7.0);
    }

    #[test]
    fn sandbox_view_isolates_outputs_and_shares_inputs() {
        let a = args2();
        let mut sb = a.sandbox_view(&[0]).unwrap();
        // Output got a fresh address, input kept its address.
        assert_ne!(sb.buffer(0).unwrap().addr(), a.buffer(0).unwrap().addr());
        assert_eq!(sb.buffer(1).unwrap().addr(), a.buffer(1).unwrap().addr());
        // Writing the sandbox output leaves the original untouched.
        sb.f32_mut(0).unwrap()[2] = 9.0;
        assert_eq!(a.f32(0).unwrap()[2], 0.0);
    }

    #[test]
    fn sandbox_bytes_counts_output_payload() {
        let a = args2();
        assert_eq!(a.sandbox_bytes(&[0]).unwrap(), 16);
        assert_eq!(a.sandbox_bytes(&[0, 1]).unwrap(), 32);
    }

    #[test]
    fn adopt_outputs_swaps_payload() {
        let mut a = args2();
        let mut w = a.sandbox_view(&[0]).unwrap();
        w.f32_mut(0).unwrap().copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        a.adopt_outputs(&mut w, &[0]).unwrap();
        assert_eq!(a.f32(0).unwrap(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn merge_overwrite_takes_changed_elements_only() {
        let pristine = Buffer::f32("out", vec![1.0, 2.0, 3.0, 4.0], Space::Global);
        let mut span_a = pristine.clone();
        if let BufferData::F32(v) = Arc::make_mut(&mut span_a.data) {
            v[1] = 20.0;
        }
        let mut span_b = pristine.clone();
        if let BufferData::F32(v) = Arc::make_mut(&mut span_b.data) {
            v[3] = 40.0;
        }
        let mut target = pristine.clone();
        target.merge_span(&span_a, &pristine, false).unwrap();
        target.merge_span(&span_b, &pristine, false).unwrap();
        assert_eq!(
            matches!(target.data(), BufferData::F32(v) if v == &vec![1.0, 20.0, 3.0, 40.0]),
            true
        );
    }

    #[test]
    fn merge_additive_composes_overlapping_increments() {
        let pristine = Buffer::u32("hist", vec![5, 0, 0], Space::Global);
        let mut span_a = pristine.clone();
        if let BufferData::U32(v) = Arc::make_mut(&mut span_a.data) {
            v[0] += 3;
            v[1] += 1;
        }
        let mut span_b = pristine.clone();
        if let BufferData::U32(v) = Arc::make_mut(&mut span_b.data) {
            v[0] += 2;
        }
        let mut target = pristine.clone();
        target.merge_span(&span_a, &pristine, true).unwrap();
        target.merge_span(&span_b, &pristine, true).unwrap();
        assert!(matches!(target.data(), BufferData::U32(v) if v == &vec![10, 1, 0]));
    }

    #[test]
    fn merge_skips_untouched_shared_payloads() {
        let pristine = Buffer::f32("out", vec![7.0; 8], Space::Global);
        let span = pristine.clone(); // never written: still shared
        let mut target = Buffer::f32("tgt", vec![1.0; 8], Space::Global);
        target.merge_span(&span, &pristine, false).unwrap();
        assert!(matches!(target.data(), BufferData::F32(v) if v == &vec![1.0; 8]));
    }

    #[test]
    fn refresh_from_reshares_payloads_and_keeps_addresses() {
        let mut a = args2();
        let mut sb = a.sandbox_view(&[0]).unwrap();
        let sandbox_addr = sb.buffer(0).unwrap().addr();
        sb.f32_mut(0).unwrap()[0] = 9.0; // dirty the lease
        a.f32_mut(0).unwrap()[1] = 5.0; // source moved on
        sb.refresh_from(&a).unwrap();
        assert_eq!(sb.buffer(0).unwrap().addr(), sandbox_addr);
        assert_eq!(sb.f32(0).unwrap(), a.f32(0).unwrap());
        assert!(sb
            .buffer(1)
            .unwrap()
            .shares_payload_with(a.buffer(1).unwrap()));
    }

    #[test]
    fn corrupt_changed_hits_only_written_elements() {
        let pristine = args2();
        let mut executed = pristine.clone();
        executed.f32_mut(0).unwrap()[1] = 5.0;
        executed.f32_mut(0).unwrap()[3] = 6.0;
        let mut target = executed.clone();
        let n = target
            .corrupt_changed(&executed, &pristine, &[0], false)
            .unwrap();
        assert_eq!(n, 2);
        let out = target.f32(0).unwrap();
        assert_eq!(out[0], 0.0); // unwritten: untouched
        assert_ne!(out[1], 5.0);
        assert_ne!(out[3], 6.0);
        // Poison writes NaN instead.
        let mut target = executed.clone();
        target
            .corrupt_changed(&executed, &pristine, &[0], true)
            .unwrap();
        assert!(target.f32(0).unwrap()[1].is_nan());
        assert!(!target.f32(0).unwrap()[0].is_nan());
    }

    #[test]
    fn changed_digest_agrees_iff_writes_agree() {
        let pristine = args2();
        let write = |vals: &[(usize, f32)]| {
            let mut a = pristine.clone();
            for &(i, v) in vals {
                a.f32_mut(0).unwrap()[i] = v;
            }
            a
        };
        let a = write(&[(1, 5.0), (2, 6.0)]);
        let b = write(&[(1, 5.0), (2, 6.0)]);
        let c = write(&[(1, 5.0), (2, 6.5)]);
        let d_a = a.changed_digest(&pristine, &[0]).unwrap();
        assert_eq!(d_a, b.changed_digest(&pristine, &[0]).unwrap());
        assert_ne!(d_a, c.changed_digest(&pristine, &[0]).unwrap());
        // An untouched (still-shared) set digests like the empty change set.
        let untouched = pristine.clone();
        let empty = untouched.changed_digest(&pristine, &[0]).unwrap();
        assert_ne!(d_a, empty);
    }

    #[test]
    fn bits_differ_detects_nan_and_shared_payloads() {
        let a = args2();
        let shared = a.clone();
        assert!(!a.bits_differ(&shared, &[0]).unwrap());
        let mut nan = a.clone();
        nan.f32_mut(0).unwrap()[2] = f32::NAN;
        assert!(a.bits_differ(&nan, &[0]).unwrap());
        assert!(!a.bits_differ(&a.clone(), &[0, 1]).unwrap());
    }

    #[test]
    fn dirty_window_finds_exact_bounds() {
        let pristine = Buffer::f32("out", vec![0.0; 100], Space::Global);
        // Shared payload: no window without scanning.
        assert_eq!(pristine.clone().dirty_window(&pristine).unwrap(), None);
        // Written but bit-identical: no window either.
        let mut same = pristine.clone();
        same.data_mut().unwrap(); // force a private payload
        assert_eq!(same.dirty_window(&pristine).unwrap(), None);
        // A single mid-buffer diff.
        let mut one = pristine.clone();
        if let BufferData::F32(v) = one.data_mut().unwrap() {
            v[37] = 1.0;
        }
        assert_eq!(one.dirty_window(&pristine).unwrap(), Some((37, 38)));
        // Diffs at both ends span the whole buffer.
        let mut ends = pristine.clone();
        if let BufferData::F32(v) = ends.data_mut().unwrap() {
            v[0] = 1.0;
            v[99] = 1.0;
        }
        assert_eq!(ends.dirty_window(&pristine).unwrap(), Some((0, 100)));
        // Bit-level float changes (-0.0, NaN) count as dirty.
        let mut bits = pristine.clone();
        if let BufferData::F32(v) = bits.data_mut().unwrap() {
            v[5] = -0.0;
            v[9] = f32::NAN;
        }
        assert_eq!(bits.dirty_window(&pristine).unwrap(), Some((5, 10)));
    }

    #[test]
    fn restore_ranges_copies_exactly_the_marked_ranges() {
        let src = Buffer::f32("live", (0..32).map(|i| i as f32).collect(), Space::Global);
        let mut sb = Buffer::f32("sandbox", vec![-1.0; 32], Space::Global);
        let mut dirty = crate::DirtyRanges::new();
        dirty.mark(4, 8);
        dirty.mark(6, 12); // overlaps the first
        dirty.mark(20, 20); // empty: ignored
        dirty.mark(30, 40); // clamped to the payload length
        let copied = sb.restore_ranges_from(&src, &dirty).unwrap();
        assert_eq!(copied, 8 + 2);
        let v = match sb.data() {
            BufferData::F32(v) => v,
            _ => unreachable!(),
        };
        for i in 0..32 {
            let expect = if (4..12).contains(&i) || (30..32).contains(&i) {
                i as f32
            } else {
                -1.0
            };
            assert_eq!(v[i], expect, "element {i}");
        }
    }

    /// Property: track every random span write (overlapping and empty
    /// ranges included) in a `DirtyRanges`, then a ranged restore must be
    /// byte-for-byte what a full-snapshot restore would produce — and the
    /// derived `dirty_window` must bound every diff even for untracked
    /// writes.
    #[cfg(feature = "proptest")]
    #[test]
    fn random_span_writes_restore_like_full_snapshot() {
        use crate::{DirtyRanges, XorShiftRng};
        let mut rng = XorShiftRng::seed_from_u64(0xD1FF_5EED);
        for round in 0..200 {
            let n = 1 + rng.gen_range_u32(0, 200) as usize;
            let live: Vec<u32> = (0..n).map(|_| rng.gen_range_u32(0, 1 << 30)).collect();
            let src = Buffer::u32("live", live.clone(), Space::Global);
            let mut sb = Buffer::u32("sandbox", live.clone(), Space::Global);
            let mut dirty = DirtyRanges::new();
            for _ in 0..rng.gen_range_u32(0, 12) {
                let a = rng.gen_range_u32(0, n as u32) as usize;
                let b = (a + rng.gen_range_u32(0, 16) as usize).min(n);
                if let BufferData::U32(v) = sb.data_mut().unwrap() {
                    for x in &mut v[a..b] {
                        *x = rng.gen_range_u32(0, 1 << 30);
                    }
                }
                dirty.mark(a as u64, b as u64);
            }
            // The derived window bounds every tracked write's effect.
            if let Some((w0, w1)) = sb.dirty_window(&src).unwrap() {
                let lo = dirty.iter().next().unwrap().0 as usize;
                let hi = dirty.iter().last().unwrap().1 as usize;
                assert!(lo <= w0 && w1 <= hi, "round {round}: window escapes marks");
            }
            // Ranged restore == full-snapshot restore, byte-for-byte.
            sb.restore_ranges_from(&src, &dirty).unwrap();
            assert!(
                !sb.bits_differ(&src).unwrap(),
                "round {round}: ranged restore diverged from full restore"
            );
        }
    }

    #[test]
    fn collect_into_args() {
        let a: Args = (0..3)
            .map(|i| Buffer::f32(format!("b{i}"), vec![0.0], Space::Global))
            .collect();
        assert_eq!(a.len(), 3);
    }
}
