//! A compact kernel intermediate representation for the compiler analyses.
//!
//! The paper's analyses (§3.4) operate on compiler IR; here each variant
//! carries a declarative summary of its loop nest and access patterns that
//! the `dysel-analysis` crate consumes:
//!
//! * **uniform workload analysis** inspects [`LoopBound`]s and
//!   [`KernelIr::early_exit`];
//! * **side effect analysis** inspects [`KernelIr::has_global_atomics`] and
//!   [`KernelIr::output_disjoint`];
//! * the **locality-centric scheduling** baseline estimates memory strides
//!   from [`AccessIr`] under each candidate loop order.

use crate::Space;

/// What a loop in the nest iterates over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoopKind {
    /// A loop over work-items along dimension `d` (0 = x, 1 = y, 2 = z) —
    /// these are the loops a CPU OpenCL runtime materializes when it
    /// serializes work-item execution.
    WorkItem(u8),
    /// An in-kernel loop written by the programmer (e.g. the `k` loop of
    /// `sgemm`, the row loop of `spmv`).
    Kernel,
}

/// Trip count of a loop, as far as the compiler can tell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoopBound {
    /// Compile-time constant.
    Const(u64),
    /// Uniform across work-groups but only known at runtime (e.g. a matrix
    /// dimension passed as a scalar argument).
    UniformRuntime,
    /// Varies per work-group / work-item (e.g. CSR row length). This is
    /// what makes a workload *irregular* for profiling purposes.
    DataDependent,
}

impl LoopBound {
    /// Whether the bound is identical for every work-group.
    pub fn is_uniform(self) -> bool {
        !matches!(self, LoopBound::DataDependent)
    }
}

/// One loop level in the kernel's (schedulable) loop nest, outermost first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LoopIr {
    /// What the loop iterates over.
    pub kind: LoopKind,
    /// Its trip count.
    pub bound: LoopBound,
}

impl LoopIr {
    /// Convenience constructor.
    pub fn new(kind: LoopKind, bound: LoopBound) -> Self {
        LoopIr { kind, bound }
    }
}

/// Shape of one memory access site with respect to the loop variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AccessPattern {
    /// Address is affine in the loop variables: `base + Σ coeff_i * loop_i`,
    /// with one coefficient (in elements) per loop level of
    /// [`KernelIr::loops`].
    Affine(Vec<i64>),
    /// Address depends on loaded data (e.g. gather through an index array).
    Indirect,
}

/// One access site in the kernel.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AccessIr {
    /// Which kernel argument is accessed.
    pub arg: usize,
    /// Default memory space for the access (placements may override).
    pub space: Space,
    /// Address shape w.r.t. the loop nest.
    pub pattern: AccessPattern,
    /// Whether the site stores.
    pub store: bool,
    /// All lanes of a warp/vector read the *same* address (broadcast) —
    /// what makes constant memory attractive to placement models.
    pub lane_uniform: bool,
    /// For indirect accesses: the byte extent of the window the indices
    /// fall in, when the compiler can bound it (e.g. `base + objxy[f]`
    /// with a bounded template). Placement models use it to estimate
    /// cache residency.
    pub reuse_window_bytes: Option<u64>,
    /// Declared value range `(lo, hi)` — inclusive, in elements — of the
    /// site's data-dependent index offset. On an [`AccessPattern::Affine`]
    /// site the offset adds to the affine base (`Σ coeff_d·i_d + offset`,
    /// a *strided indirect* access); on an [`AccessPattern::Indirect`]
    /// site it is the absolute index window.
    ///
    /// Contract (what the disjointness solver assumes): the range both
    /// **covers** the offsets (every offset the site produces lies in
    /// `[lo, hi]`, on every input — this makes `Disjoint` proofs sound)
    /// and is **jointly attainable** (for any two distinct work items and
    /// any pair of in-range values, some input and iteration realize those
    /// offsets simultaneously — this makes `Overlap` verdicts honest).
    /// Sites whose indices are correlated across work items (e.g. a
    /// scatter through a permutation array) satisfy only the first half
    /// and must *not* declare a range.
    pub index_range: Option<(i64, i64)>,
}

impl AccessIr {
    /// Read access with an affine pattern.
    pub fn affine_load(arg: usize, coeffs: Vec<i64>) -> Self {
        AccessIr {
            arg,
            space: Space::Global,
            pattern: AccessPattern::Affine(coeffs),
            store: false,
            lane_uniform: false,
            reuse_window_bytes: None,
            index_range: None,
        }
    }

    /// Write access with an affine pattern.
    pub fn affine_store(arg: usize, coeffs: Vec<i64>) -> Self {
        AccessIr {
            arg,
            space: Space::Global,
            pattern: AccessPattern::Affine(coeffs),
            store: true,
            lane_uniform: false,
            reuse_window_bytes: None,
            index_range: None,
        }
    }

    /// Data-dependent (indirect) read.
    pub fn indirect_load(arg: usize) -> Self {
        AccessIr {
            arg,
            space: Space::Global,
            pattern: AccessPattern::Indirect,
            store: false,
            lane_uniform: false,
            reuse_window_bytes: None,
            index_range: None,
        }
    }

    /// Data-dependent (indirect) write — e.g. a histogram scatter. The
    /// verifier treats such sites as unprovable rather than disjoint.
    pub fn indirect_store(arg: usize) -> Self {
        AccessIr {
            arg,
            space: Space::Global,
            pattern: AccessPattern::Indirect,
            store: true,
            lane_uniform: false,
            reuse_window_bytes: None,
            index_range: None,
        }
    }

    /// Builder-style: mark the access as lane-uniform (broadcast).
    pub fn uniform(mut self) -> Self {
        self.lane_uniform = true;
        self
    }

    /// Builder-style: bound the indirect reuse window.
    pub fn with_reuse_window(mut self, bytes: u64) -> Self {
        self.reuse_window_bytes = Some(bytes);
        self
    }

    /// Builder-style: declare the inclusive value range of the site's
    /// data-dependent index offset (see [`AccessIr::index_range`] for the
    /// covering/attainability contract the declaration promises).
    pub fn with_index_range(mut self, lo: i64, hi: i64) -> Self {
        self.index_range = Some((lo, hi));
        self
    }
}

/// Declarative summary of one kernel variant, consumed by the analyses.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelIr {
    /// The schedulable loop nest, outermost first.
    pub loops: Vec<LoopIr>,
    /// Access sites.
    pub accesses: Vec<AccessIr>,
    /// Whether the kernel uses global atomic operations.
    pub has_global_atomics: bool,
    /// Whether distinct work-groups write disjoint ranges of the output.
    pub output_disjoint: bool,
    /// Whether the kernel may exit a loop early / terminate early.
    pub early_exit: bool,
    /// Argument indices the kernel writes (its outputs).
    pub output_args: Vec<usize>,
    /// Scratchpad bytes used per work-group (affects GPU occupancy).
    pub scratchpad_bytes: u32,
}

impl Default for KernelIr {
    fn default() -> Self {
        KernelIr {
            loops: Vec::new(),
            accesses: Vec::new(),
            has_global_atomics: false,
            output_disjoint: true,
            early_exit: false,
            output_args: vec![0],
            scratchpad_bytes: 0,
        }
    }
}

impl KernelIr {
    /// A minimal regular IR: constant-bound loops, disjoint outputs, no
    /// atomics — the "BLAS/stencil" shape that admits fully-productive
    /// profiling.
    pub fn regular(output_args: Vec<usize>) -> Self {
        KernelIr {
            output_args,
            ..KernelIr::default()
        }
    }

    /// Whether any loop bound varies across work-groups.
    pub fn has_nonuniform_loops(&self) -> bool {
        self.loops.iter().any(|l| !l.bound.is_uniform())
    }

    /// Builder-style: set the loop nest.
    pub fn with_loops(mut self, loops: Vec<LoopIr>) -> Self {
        self.loops = loops;
        self
    }

    /// Builder-style: set the access sites.
    pub fn with_accesses(mut self, accesses: Vec<AccessIr>) -> Self {
        self.accesses = accesses;
        self
    }

    /// Builder-style: mark global atomics.
    pub fn with_atomics(mut self) -> Self {
        self.has_global_atomics = true;
        self
    }

    /// Builder-style: mark overlapping outputs.
    pub fn with_overlapping_outputs(mut self) -> Self {
        self.output_disjoint = false;
        self
    }

    /// Builder-style: mark early exits.
    pub fn with_early_exit(mut self) -> Self {
        self.early_exit = true;
        self
    }

    /// Builder-style: set scratchpad usage.
    pub fn with_scratchpad(mut self, bytes: u32) -> Self {
        self.scratchpad_bytes = bytes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_ir_is_uniform() {
        let ir = KernelIr::regular(vec![0]).with_loops(vec![
            LoopIr::new(LoopKind::WorkItem(0), LoopBound::UniformRuntime),
            LoopIr::new(LoopKind::Kernel, LoopBound::Const(128)),
        ]);
        assert!(!ir.has_nonuniform_loops());
        assert!(ir.output_disjoint);
        assert!(!ir.has_global_atomics);
    }

    #[test]
    fn data_dependent_loop_is_nonuniform() {
        let ir = KernelIr::regular(vec![0]).with_loops(vec![LoopIr::new(
            LoopKind::Kernel,
            LoopBound::DataDependent,
        )]);
        assert!(ir.has_nonuniform_loops());
    }

    #[test]
    fn index_range_builder_annotates() {
        let a = AccessIr::indirect_store(0).with_index_range(0, 255);
        assert_eq!(a.index_range, Some((0, 255)));
        let b = AccessIr::affine_store(0, vec![32]).with_index_range(0, 31);
        assert_eq!(b.index_range, Some((0, 31)));
        assert_eq!(AccessIr::affine_load(1, vec![1]).index_range, None);
    }

    #[test]
    fn builders_compose() {
        let ir = KernelIr::regular(vec![1])
            .with_atomics()
            .with_overlapping_outputs()
            .with_early_exit()
            .with_scratchpad(4096);
        assert!(ir.has_global_atomics);
        assert!(!ir.output_disjoint);
        assert!(ir.early_exit);
        assert_eq!(ir.scratchpad_bytes, 4096);
    }
}
