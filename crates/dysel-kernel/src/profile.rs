//! Shared vocabulary for the profiling modes and orchestration flavours.

use std::fmt;

/// The three productive micro-profiling modes of §2.2 / Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProfilingMode {
    /// Each variant profiles a *different* slice of the workload; all K
    /// profiled slices contribute to the final output. Requires a regular
    /// workload with non-overlapping outputs. Zero extra space.
    FullyProductive,
    /// All variants profile the *same* slice; the first variant writes the
    /// real output, the others write sandboxes (≤ K−1 extra copies).
    /// Handles irregular workloads fairly.
    HybridPartial,
    /// All variants run the same slice into private output copies; the
    /// winner's copy is swapped in (≤ K copies). Handles overlapping /
    /// variable output ranges, atomics, and algorithm changes. Cannot run
    /// asynchronously: the final output space is unknown until selection.
    SwapPartial,
}

impl ProfilingMode {
    /// How many of the K profiled executions contribute output
    /// (Table 1, "productive output in profiling").
    pub fn productive_slices(self, k: usize) -> usize {
        match self {
            ProfilingMode::FullyProductive => k,
            ProfilingMode::HybridPartial | ProfilingMode::SwapPartial => 1.min(k),
        }
    }

    /// Upper bound on extra output copies required (Table 1, "extra space").
    pub fn extra_copies(self, k: usize) -> usize {
        match self {
            ProfilingMode::FullyProductive => 0,
            ProfilingMode::HybridPartial => k.saturating_sub(1),
            ProfilingMode::SwapPartial => k,
        }
    }

    /// Whether asynchronous (eager) execution is supported (Table 1).
    pub fn supports_async(self) -> bool {
        !matches!(self, ProfilingMode::SwapPartial)
    }

    /// Whether the mode tolerates irregular (work-group-varying) workloads.
    pub fn handles_irregular(self) -> bool {
        !matches!(self, ProfilingMode::FullyProductive)
    }

    /// Whether the mode tolerates overlapping / variable output ranges and
    /// global atomics.
    pub fn handles_output_overlap(self) -> bool {
        matches!(self, ProfilingMode::SwapPartial)
    }
}

impl fmt::Display for ProfilingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProfilingMode::FullyProductive => "fully-productive",
            ProfilingMode::HybridPartial => "hybrid-partial",
            ProfilingMode::SwapPartial => "swap-partial",
        };
        f.write_str(s)
    }
}

/// How profiling and the remaining execution are orchestrated (§2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Orchestration {
    /// Barrier after profiling, then batch-launch the winner (Fig. 4(a)).
    Sync,
    /// Eager execution of workload chunks with the best-so-far (initially a
    /// suggested default) variant while profiling completes (Fig. 4(b)).
    #[default]
    Async,
}

impl fmt::Display for Orchestration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Orchestration::Sync => "sync",
            Orchestration::Async => "async",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_properties() {
        use ProfilingMode::*;
        let k = 5;
        // Productive output in profiling: K / 1 / 1.
        assert_eq!(FullyProductive.productive_slices(k), 5);
        assert_eq!(HybridPartial.productive_slices(k), 1);
        assert_eq!(SwapPartial.productive_slices(k), 1);
        // Extra space: 0 / <= K-1 / <= K.
        assert_eq!(FullyProductive.extra_copies(k), 0);
        assert_eq!(HybridPartial.extra_copies(k), 4);
        assert_eq!(SwapPartial.extra_copies(k), 5);
        // Async support: yes / yes / no.
        assert!(FullyProductive.supports_async());
        assert!(HybridPartial.supports_async());
        assert!(!SwapPartial.supports_async());
    }

    #[test]
    fn applicability_ladder() {
        use ProfilingMode::*;
        assert!(!FullyProductive.handles_irregular());
        assert!(HybridPartial.handles_irregular());
        assert!(SwapPartial.handles_irregular());
        assert!(!HybridPartial.handles_output_overlap());
        assert!(SwapPartial.handles_output_overlap());
    }

    #[test]
    fn display() {
        assert_eq!(ProfilingMode::SwapPartial.to_string(), "swap-partial");
        assert_eq!(Orchestration::Async.to_string(), "async");
    }
}
