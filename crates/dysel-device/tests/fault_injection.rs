//! Device-level fault-injection contract: what each fault class does to a
//! single launch, independent of the runtime's degradation machinery.
//!
//! * `error`  — the launch fails, executes nothing, advances no stream;
//! * `wrong`  — the launch completes but every element it wrote is tampered;
//! * `poison` — like `wrong`, with NaN sentinels;
//! * `hang`   — the launch completes functionally but costs ×N cycles;
//! * a reset device replays the exact same fault sequence.

use dysel_device::{
    BatchEntry, CpuConfig, CpuDevice, Cycles, Device, FaultKind, FaultPlan, FaultRule, LaunchSpec,
    StreamId,
};
use dysel_kernel::{Args, Buffer, KernelIr, Space, UnitRange, Variant, VariantMeta};

const N: u64 = 1024;

/// `out[u] = 2*in[u] + 1` per unit — every launched unit writes exactly one
/// element of arg 0, so corruption is observable per element.
fn writer(name: &str) -> Variant {
    Variant::from_fn(
        VariantMeta::new(name, KernelIr::regular(vec![0])),
        |ctx, args| {
            for u in ctx.units().iter() {
                let x = args.f32(1).unwrap()[u as usize];
                args.f32_mut(0).unwrap()[u as usize] = 2.0 * x + 1.0;
                ctx.vector_compute(1, 8, 8, 1);
            }
        },
    )
}

fn fresh_args() -> Args {
    let mut a = Args::new();
    a.push(Buffer::f32("out", vec![0.0; N as usize], Space::Global));
    a.push(Buffer::f32(
        "in",
        (0..N).map(|i| i as f32).collect(),
        Space::Global,
    ));
    a
}

fn device(plan: Option<FaultPlan>) -> CpuDevice {
    let mut dev = CpuDevice::new(CpuConfig::noiseless());
    dev.set_fault_plan(plan);
    dev
}

fn launch(
    dev: &mut CpuDevice,
    v: &Variant,
    args: &mut Args,
    units: UnitRange,
) -> dysel_device::LaunchOutcome {
    dev.launch(LaunchSpec {
        kernel: v.kernel.as_ref(),
        meta: &v.meta,
        units,
        args,
        stream: StreamId(0),
        not_before: Cycles::ZERO,
        measured: true,
        budget: None,
    })
}

/// The all-healthy reference output of one full launch.
fn healthy_run() -> (dysel_device::LaunchRecord, Vec<f32>) {
    let mut dev = device(None);
    let v = writer("w");
    let mut a = fresh_args();
    let rec = launch(&mut dev, &v, &mut a, UnitRange::new(0, N)).unwrap_done();
    (rec, a.f32(0).unwrap().to_vec())
}

#[test]
fn no_plan_injects_nothing() {
    let mut dev = device(None);
    assert!(dev.fault_plan().is_none());
    let (_, out) = healthy_run();
    for (i, y) in out.iter().enumerate() {
        assert_eq!(*y, 2.0 * i as f32 + 1.0);
    }
    // An installed-but-empty plan is also inert.
    dev.set_fault_plan(Some(FaultPlan::new(0)));
    let v = writer("w");
    let mut a = fresh_args();
    assert!(launch(&mut dev, &v, &mut a, UnitRange::new(0, N))
        .done()
        .is_some());
    assert_eq!(dev.fault_plan().unwrap().total_injected(), 0);
}

#[test]
fn launch_error_executes_nothing_and_advances_no_stream() {
    let plan = FaultPlan::new(0).with(FaultRule::new("w", FaultKind::LaunchError));
    let mut dev = device(Some(plan));
    let v = writer("w");
    let mut a = fresh_args();
    let out = launch(&mut dev, &v, &mut a, UnitRange::new(0, N));
    assert!(out.is_failed());
    let failure = match out {
        dysel_device::LaunchOutcome::Failed(f) => f,
        _ => unreachable!(),
    };
    assert!(failure.transient);
    // The host observes the failure after paying the launch overhead.
    assert_eq!(failure.at, dev.launch_overhead());
    // Nothing executed: buffers untouched, stream never advanced.
    assert!(a.f32(0).unwrap().iter().all(|y| *y == 0.0));
    assert_eq!(dev.stream_end(StreamId(0)), Cycles::ZERO);
    let plan = dev.fault_plan().unwrap();
    assert_eq!(plan.launches_of("w"), 1);
    assert_eq!(plan.injected_count(FaultKind::LaunchError), 1);
}

#[test]
fn wrong_output_tampers_exactly_the_written_elements() {
    let (_, healthy) = healthy_run();
    let plan = FaultPlan::new(0).with(FaultRule::new("w", FaultKind::WrongOutput));
    let mut dev = device(Some(plan));
    let v = writer("w");
    let mut a = fresh_args();
    let half = N / 2;
    let rec = launch(&mut dev, &v, &mut a, UnitRange::new(0, half));
    assert!(rec.done().is_some(), "wrong-output launches still complete");
    let out = a.f32(0).unwrap();
    for i in 0..half as usize {
        assert_ne!(
            out[i].to_bits(),
            healthy[i].to_bits(),
            "written element {i} must be tampered"
        );
        assert_ne!(out[i], 0.0, "tampering must not silently erase the write");
    }
    for i in half as usize..N as usize {
        assert_eq!(out[i], 0.0, "unwritten element {i} must stay pristine");
    }
    // Non-output arguments are never touched.
    for (i, x) in a.f32(1).unwrap().iter().enumerate() {
        assert_eq!(*x, i as f32);
    }
}

#[test]
fn poison_writes_nan_sentinels() {
    let plan = FaultPlan::new(0).with(FaultRule::new("w", FaultKind::Poison));
    let mut dev = device(Some(plan));
    let v = writer("w");
    let mut a = fresh_args();
    launch(&mut dev, &v, &mut a, UnitRange::new(0, N))
        .done()
        .expect("poisoned launches still complete");
    assert!(a.f32(0).unwrap().iter().all(|y| y.is_nan()));
}

#[test]
fn hang_multiplies_the_priced_cost() {
    let (healthy, reference) = healthy_run();
    let plan = FaultPlan::new(0).with(FaultRule::new("w", FaultKind::Hang(8)));
    let mut dev = device(Some(plan));
    let v = writer("w");
    let mut a = fresh_args();
    let rec = launch(&mut dev, &v, &mut a, UnitRange::new(0, N)).unwrap_done();
    // Functionally correct output, ×8 busy time.
    assert_eq!(a.f32(0).unwrap(), &reference[..]);
    let ratio = rec.busy.ratio_over(healthy.busy);
    assert!(
        (7.9..=8.1).contains(&ratio),
        "hang*8 busy ratio was {ratio}"
    );
    assert!(rec.measured.unwrap() > healthy.measured.unwrap());
}

#[test]
fn windowed_rule_hits_only_its_launch_indexes_in_a_batch() {
    let plan = FaultPlan::new(0).with(FaultRule::new("w", FaultKind::LaunchError).window(1, 1));
    let mut dev = device(Some(plan));
    let v = writer("w");
    let mut a = fresh_args();
    let third = N / 4;
    let entries: Vec<BatchEntry<'_>> = (0..3)
        .map(|i| BatchEntry {
            kernel: v.kernel.as_ref(),
            meta: &v.meta,
            units: UnitRange::new(i * third, (i + 1) * third),
            target: 0,
            stream: StreamId(i as u32),
            not_before: Cycles::ZERO,
            measured: false,
            budget: None,
        })
        .collect();
    let outcomes = dev.launch_batch(&entries, &mut [&mut a]);
    assert_eq!(outcomes.len(), 3);
    assert!(outcomes[0].done().is_some());
    assert!(outcomes[1].is_failed(), "launch index 1 is the faulted one");
    assert!(outcomes[2].done().is_some());
    let out = a.f32(0).unwrap();
    for i in 0..third as usize {
        assert_ne!(out[i], 0.0, "entry 0's slice executed");
    }
    for i in third as usize..(2 * third) as usize {
        assert_eq!(out[i], 0.0, "the failed entry's slice stayed unwritten");
    }
    for i in (2 * third) as usize..(3 * third) as usize {
        assert_ne!(out[i], 0.0, "entry 2's slice executed");
    }
    // The failed entry never occupied its stream.
    assert_eq!(dev.stream_end(StreamId(1)), Cycles::ZERO);
}

#[test]
fn device_reset_replays_the_same_fault_sequence() {
    let plan: FaultPlan = "seed=11;w=error?0.4".parse().unwrap();
    let mut dev = device(Some(plan));
    let v = writer("w");
    let run = |dev: &mut CpuDevice| -> Vec<bool> {
        (0..16)
            .map(|_| {
                let mut a = fresh_args();
                launch(dev, &v, &mut a, UnitRange::new(0, N)).is_failed()
            })
            .collect()
    };
    let first = run(&mut dev);
    let log = dev.fault_plan().unwrap().injected().to_vec();
    assert!(first.iter().any(|f| *f), "probability 0.4 over 16 launches");
    assert!(!first.iter().all(|f| *f));
    dev.reset();
    assert_eq!(dev.fault_plan().unwrap().total_injected(), 0);
    let second = run(&mut dev);
    assert_eq!(first, second);
    assert_eq!(dev.fault_plan().unwrap().injected(), &log[..]);
}
