//! Behavioural tests of the device models: the memory-system effects the
//! paper's case studies rely on, checked in isolation.

use dysel_device::{Cycles, Device, GpuConfig, GpuDevice, LaunchSpec, StreamId};
use dysel_kernel::{Args, Buffer, KernelIr, Space, UnitRange, Variant, VariantMeta};

fn gpu() -> GpuDevice {
    GpuDevice::new(GpuConfig::kepler_k20c().noiseless())
}

fn one_launch(dev: &mut GpuDevice, v: &Variant, units: u64, args: &mut Args) -> Cycles {
    dev.reset();
    dev.launch(LaunchSpec {
        kernel: v.kernel.as_ref(),
        meta: &v.meta,
        units: UnitRange::new(0, units),
        args,
        stream: StreamId(0),
        not_before: Cycles::ZERO,
        measured: false,
        budget: None,
    })
    .unwrap_done()
    .busy
}

fn args_with(n: usize, space: Space) -> Args {
    let mut a = Args::new();
    a.push(Buffer::f32("buf", vec![1.0; n], space));
    a
}

/// A kernel whose warps re-read the same small window repeatedly.
fn rereader(window_elems: u64, space_arg: usize) -> Variant {
    Variant::from_fn(
        VariantMeta::new("rereader", KernelIr::regular(vec![0])),
        move |ctx, _args| {
            let _ = space_arg;
            for u in ctx.units().iter() {
                let base = (u * 32) % window_elems;
                ctx.warp_load(0, base, 1, 32);
                ctx.vector_compute(1, 32, 32, 1);
            }
        },
    )
}

/// A kernel whose warps *gather* scattered addresses from a small window —
/// the access shape the read-only/texture path is built for.
fn scattered_rereader(window_elems: u64) -> Variant {
    Variant::from_fn(
        VariantMeta::new("scattered", KernelIr::regular(vec![0])),
        move |ctx, _args| {
            for u in ctx.units().iter() {
                let mut addrs = [0u64; 32];
                for (l, a) in addrs.iter_mut().enumerate() {
                    *a = (u * 73 + l as u64 * 97) % window_elems;
                }
                // Several gathers per unit so fixed group overhead
                // does not dominate.
                for _ in 0..8 {
                    ctx.gather(0, &addrs);
                }
                ctx.vector_compute(8, 32, 32, 1);
            }
        },
    )
}

#[test]
fn texture_cache_rewards_temporal_reuse() {
    // Same access pattern; the texture binding wins once the window is
    // cache-resident, and loses its edge when the window far exceeds it.
    let small = 1u64 << 11; // 8 KiB window: resident in the 48 KiB cache
    let v = scattered_rereader(small);
    let mut global_args = args_with(1 << 22, Space::Global);
    let mut tex_args = args_with(1 << 22, Space::Texture);
    let mut dev = gpu();
    let t_global = one_launch(&mut dev, &v, 4096, &mut global_args);
    let t_tex = one_launch(&mut dev, &v, 4096, &mut tex_args);
    assert!(
        t_tex.as_f64() < 0.7 * t_global.as_f64(),
        "texture {t_tex} vs global {t_global}"
    );
}

#[test]
fn constant_memory_punishes_divergent_reads() {
    // Broadcast (stride 0) is cheap in constant memory; per-lane strided
    // reads serialize.
    let broadcast = Variant::from_fn(
        VariantMeta::new("bcast", KernelIr::regular(vec![0])),
        |ctx, _| {
            for u in ctx.units().iter() {
                for k in 0..8 {
                    ctx.warp_load(0, (u + k) % 64, 0, 32);
                }
            }
        },
    );
    let divergent = Variant::from_fn(
        VariantMeta::new("diverge", KernelIr::regular(vec![0])),
        |ctx, _| {
            for u in ctx.units().iter() {
                for k in 0..8 {
                    ctx.warp_load(0, (u * 32 + k) % 4096, 1, 32);
                }
            }
        },
    );
    let mut dev = gpu();
    let mut a = args_with(1 << 16, Space::Constant);
    let t_b = one_launch(&mut dev, &broadcast, 2048, &mut a);
    let t_d = one_launch(&mut dev, &divergent, 2048, &mut a);
    assert!(
        t_d.as_f64() > 5.0 * t_b.as_f64(),
        "divergent constant reads must serialize: {t_d} vs {t_b}"
    );
}

#[test]
fn warpseq_prices_like_repeated_warps_on_global() {
    // The batched descriptor must agree with its expansion.
    let expanded = Variant::from_fn(
        VariantMeta::new("expanded", KernelIr::regular(vec![0])),
        |ctx, _| {
            for u in ctx.units().iter() {
                for k in 0..64u64 {
                    ctx.warp_load(0, u * 4096 + k * 64, 1, 32);
                }
            }
        },
    );
    let batched = Variant::from_fn(
        VariantMeta::new("batched", KernelIr::regular(vec![0])),
        |ctx, _| {
            for u in ctx.units().iter() {
                ctx.warp_load_seq(0, u * 4096, 1, 32, 64, 64);
            }
        },
    );
    let mut dev = gpu();
    let mut a = args_with(1 << 22, Space::Global);
    let t_e = one_launch(&mut dev, &expanded, 512, &mut a);
    let t_b = one_launch(&mut dev, &batched, 512, &mut a);
    let ratio = t_e.ratio_over(t_b);
    assert!(
        (0.9..=1.1).contains(&ratio),
        "batched vs expanded pricing diverged: {ratio}"
    );
}

#[test]
fn low_occupancy_costs_latency() {
    let make = |smem: u32| {
        let ir = KernelIr::regular(vec![0]).with_scratchpad(smem);
        Variant::new(
            VariantMeta::new(format!("smem{smem}"), ir).with_group_size(128),
            std::sync::Arc::new(|ctx: &mut dysel_kernel::GroupCtx<'_>, _args: &mut Args| {
                for u in ctx.units().iter() {
                    for k in 0..32 {
                        ctx.warp_load(0, (u * 1024 + k * 32) % 65536, 1, 32);
                    }
                }
            }),
        )
    };
    let mut dev = gpu();
    let mut a = args_with(1 << 18, Space::Global);
    let light = one_launch(&mut dev, &make(0), 1024, &mut a);
    let heavy = one_launch(&mut dev, &make(40 << 10), 1024, &mut a); // occ 1
    assert!(
        heavy.as_f64() > 1.2 * light.as_f64(),
        "occupancy-starved kernel should pay latency: {heavy} vs {light}"
    );
}

#[test]
fn stream_pipelining_overlaps_launch_overhead() {
    // Back-to-back launches in one stream do not serialize on the launch
    // overhead: gap between launches is 0 once the stream is busy.
    let v = rereader(1 << 12, 0);
    let mut dev = gpu();
    let mut a = args_with(1 << 16, Space::Global);
    let r1 = dev.launch(LaunchSpec {
        kernel: v.kernel.as_ref(),
        meta: &v.meta,
        units: UnitRange::new(0, 256),
        args: &mut a,
        stream: StreamId(0),
        not_before: Cycles::ZERO,
        measured: false,
        budget: None,
    });
    let r1 = r1.unwrap_done();
    let r2 = dev.launch(LaunchSpec {
        kernel: v.kernel.as_ref(),
        meta: &v.meta,
        units: UnitRange::new(256, 512),
        args: &mut a,
        stream: StreamId(0),
        not_before: Cycles::ZERO,
        measured: false,
        budget: None,
    });
    let r2 = r2.unwrap_done();
    assert!(r2.start <= r1.end + dev.launch_overhead());
    assert!(r2.start >= r1.end.min(r2.start)); // sanity
}

#[test]
fn measured_busy_is_schedule_independent() {
    // The throughput-normalized measurement must not depend on how many
    // other launches are queued (fairness under contention).
    let v = rereader(1 << 12, 0);
    let mut dev = gpu();
    let mut a = args_with(1 << 16, Space::Global);
    let quiet = dev
        .launch(LaunchSpec {
            kernel: v.kernel.as_ref(),
            meta: &v.meta,
            units: UnitRange::new(0, 128),
            args: &mut a,
            stream: StreamId(1),
            not_before: Cycles::ZERO,
            measured: true,
            budget: None,
        })
        .unwrap_done()
        .measured
        .unwrap();
    // Queue a big launch first, then measure the same slice again.
    dev.reset();
    let filler = rereader(1 << 12, 0);
    let _ = dev.launch(LaunchSpec {
        kernel: filler.kernel.as_ref(),
        meta: &filler.meta,
        units: UnitRange::new(1000, 3000),
        args: &mut a,
        stream: StreamId(2),
        not_before: Cycles::ZERO,
        measured: false,
        budget: None,
    });
    let contended = dev
        .launch(LaunchSpec {
            kernel: v.kernel.as_ref(),
            meta: &v.meta,
            units: UnitRange::new(0, 128),
            args: &mut a,
            stream: StreamId(1),
            not_before: Cycles::ZERO,
            measured: true,
            budget: None,
        })
        .unwrap_done()
        .measured
        .unwrap();
    let ratio = contended.ratio_over(quiet);
    assert!(
        (0.8..=1.25).contains(&ratio),
        "busy-time measurement should be contention-robust: {ratio}"
    );
}
