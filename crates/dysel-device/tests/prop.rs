//! Property-based tests for the device models.

use proptest::prelude::*;

use dysel_device::gpu::{coalesced_segments, gather_segments, smem_conflict_degree};
use dysel_device::{CacheConfig, CacheHierarchy, Cycles, NoiseModel, SetAssocCache, UnitPool};

proptest! {
    /// Coalescing bounds: a warp touches at least 1 and at most
    /// `lanes + 1` segments (the +1 for element straddle).
    #[test]
    fn coalescing_bounds(base in 0u64..1_000_000, stride in -512i64..512, lanes in 1u32..64) {
        // Keep addresses positive.
        let base = base + 100_000;
        let segs = coalesced_segments(base, stride, lanes, 4, 128);
        prop_assert!(segs >= 1);
        // Each lane touches at most two segments (element straddle).
        prop_assert!(segs <= 2 * lanes, "{segs} vs {lanes}");
    }

    /// Tighter bound for unit-stride warps: ceil(bytes/seg) + 1.
    #[test]
    fn unit_stride_coalesces(base in 0u64..1_000_000, lanes in 1u32..64) {
        let segs = coalesced_segments(base, 4, lanes, 4, 128);
        let tight = (u64::from(lanes) * 4).div_ceil(128) as u32 + 1;
        prop_assert!(segs <= tight);
    }

    /// Gather segments never exceed the address count and dedup exactly
    /// duplicates.
    #[test]
    fn gather_segment_bounds(addrs in proptest::collection::vec(0u64..1_000_000, 1..64)) {
        let segs = gather_segments(&addrs, 4, 128);
        prop_assert!(segs >= 1);
        prop_assert!(segs <= 2 * addrs.len() as u32);
        let dup: Vec<u64> = addrs.iter().flat_map(|&a| [a, a]).collect();
        prop_assert_eq!(gather_segments(&dup, 4, 128), segs);
    }

    /// Bank conflicts are between 1 and `lanes`, and odd strides are
    /// conflict-free for a full warp.
    #[test]
    fn bank_conflict_bounds(stride in -128i64..128, lanes in 1u32..33) {
        let c = smem_conflict_degree(stride, lanes);
        prop_assert!(c >= 1 && c <= lanes);
        if stride % 2 != 0 && lanes == 32 {
            prop_assert_eq!(c, 1, "odd strides are conflict-free");
        }
    }

    /// Cache hit rate is in [0, 1]; re-walking the same small footprint is
    /// all hits; stats add up.
    #[test]
    fn cache_sanity(lines in proptest::collection::vec(0u64..128, 1..256)) {
        let mut c = SetAssocCache::new(CacheConfig::l1d());
        for &l in &lines {
            c.access_line(l);
        }
        let (h1, m1) = c.stats();
        prop_assert_eq!(h1 + m1, lines.len() as u64);
        // 128 distinct lines = 8 KiB: fits 32 KiB, so a re-walk all hits.
        for &l in &lines {
            prop_assert!(c.access_line(l));
        }
        let rate = c.hit_rate();
        prop_assert!((0.0..=1.0).contains(&rate));
    }

    /// Hierarchy latencies are monotone: every access costs at least an L1
    /// hit and at most a memory access.
    #[test]
    fn hierarchy_latency_bounds(addrs in proptest::collection::vec(0u64..(1u64<<24), 1..200)) {
        let mut h = CacheHierarchy::default();
        for &a in &addrs {
            let lat = h.access(a);
            prop_assert!(lat >= h.l1_lat && lat <= h.mem_lat);
        }
    }

    /// UnitPool scheduling: work is conserved (sum of spans = sum of
    /// costs) and the makespan is within the list-scheduling bound.
    #[test]
    fn pool_schedules_conservatively(costs in proptest::collection::vec(1u64..10_000, 1..64),
                                     units in 1usize..16) {
        let mut p = UnitPool::new(units);
        let mut spans = 0u64;
        for &c in &costs {
            let pl = p.assign(Cycles(c), Cycles::ZERO);
            prop_assert_eq!(pl.end - pl.start, Cycles(c));
            spans += c;
        }
        let total: u64 = costs.iter().sum();
        prop_assert_eq!(spans, total);
        let makespan = p.busy_until().0;
        let max_c = *costs.iter().max().unwrap();
        // Greedy list scheduling: makespan <= total/units + max job.
        prop_assert!(makespan <= total / units as u64 + max_c);
        prop_assert!(makespan >= total / units as u64);
        prop_assert!(makespan >= max_c);
    }

    /// Noise is deterministic under reset and mean-preserving within a
    /// loose band.
    #[test]
    fn noise_deterministic(sigma in 0.0f64..0.2, seed in any::<u64>()) {
        let mut n1 = NoiseModel::new(sigma, seed);
        let mut n2 = NoiseModel::new(sigma, seed);
        for _ in 0..20 {
            prop_assert_eq!(n1.perturb(Cycles(1_000_000)), n2.perturb(Cycles(1_000_000)));
        }
        n1.reset();
        let mut n3 = NoiseModel::new(sigma, seed);
        prop_assert_eq!(n1.perturb(Cycles(123_456)), n3.perturb(Cycles(123_456)));
    }
}
