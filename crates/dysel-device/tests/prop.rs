//! Randomized property tests for the device models.
//!
//! Gated behind the dep-less `proptest` cargo feature and driven by the
//! in-tree [`XorShiftRng`]: `cargo test -p dysel-device --features proptest`.
#![cfg(feature = "proptest")]

use dysel_device::gpu::{coalesced_segments, gather_segments, smem_conflict_degree};
use dysel_device::{
    CacheConfig, CacheHierarchy, Cycles, Executor, NoiseModel, SetAssocCache, UnitPool,
};
use dysel_kernel::XorShiftRng;

const CASES: u64 = 128;

fn rng_for(test: u64, case: u64) -> XorShiftRng {
    XorShiftRng::seed_from_u64(0xDE71_CE00 + test * 1_000_003 + case)
}

/// Coalescing bounds: a warp touches at least 1 and at most `2 * lanes`
/// segments (the factor for element straddle).
#[test]
fn coalescing_bounds() {
    for case in 0..CASES {
        let mut rng = rng_for(1, case);
        let base = rng.gen_range_u64(0, 1_000_000) + 100_000;
        let stride = rng.gen_range_u64(0, 1024) as i64 - 512;
        let lanes = rng.gen_range_u32(1, 64);
        let segs = coalesced_segments(base, stride, lanes, 4, 128);
        assert!(segs >= 1);
        assert!(segs <= 2 * lanes, "{segs} vs {lanes}");
    }
}

/// Tighter bound for unit-stride warps: ceil(bytes/seg) + 1.
#[test]
fn unit_stride_coalesces() {
    for case in 0..CASES {
        let mut rng = rng_for(2, case);
        let base = rng.gen_range_u64(0, 1_000_000);
        let lanes = rng.gen_range_u32(1, 64);
        let segs = coalesced_segments(base, 4, lanes, 4, 128);
        let tight = (u64::from(lanes) * 4).div_ceil(128) as u32 + 1;
        assert!(segs <= tight);
    }
}

/// Gather segments never exceed the address count and dedup exact
/// duplicates.
#[test]
fn gather_segment_bounds() {
    for case in 0..CASES {
        let mut rng = rng_for(3, case);
        let addrs: Vec<u64> = (0..rng.gen_range_usize(1, 64))
            .map(|_| rng.gen_range_u64(0, 1_000_000))
            .collect();
        let segs = gather_segments(&addrs, 4, 128);
        assert!(segs >= 1);
        assert!(segs <= 2 * addrs.len() as u32);
        let dup: Vec<u64> = addrs.iter().flat_map(|&a| [a, a]).collect();
        assert_eq!(gather_segments(&dup, 4, 128), segs);
    }
}

/// Bank conflicts are between 1 and `lanes`, and odd strides are
/// conflict-free for a full warp.
#[test]
fn bank_conflict_bounds() {
    for case in 0..CASES {
        let mut rng = rng_for(4, case);
        let stride = rng.gen_range_u64(0, 256) as i64 - 128;
        let lanes = rng.gen_range_u32(1, 33);
        let c = smem_conflict_degree(stride, lanes);
        assert!(c >= 1 && c <= lanes);
        if stride % 2 != 0 && lanes == 32 {
            assert_eq!(c, 1, "odd strides are conflict-free");
        }
    }
}

/// Cache hit rate is in [0, 1]; re-walking the same small footprint is all
/// hits; stats add up.
#[test]
fn cache_sanity() {
    for case in 0..CASES {
        let mut rng = rng_for(5, case);
        let lines: Vec<u64> = (0..rng.gen_range_usize(1, 256))
            .map(|_| rng.gen_range_u64(0, 128))
            .collect();
        let mut c = SetAssocCache::new(CacheConfig::l1d());
        for &l in &lines {
            c.access_line(l);
        }
        let (h1, m1) = c.stats();
        assert_eq!(h1 + m1, lines.len() as u64);
        // 128 distinct lines = 8 KiB: fits 32 KiB, so a re-walk all hits.
        for &l in &lines {
            assert!(c.access_line(l));
        }
        let rate = c.hit_rate();
        assert!((0.0..=1.0).contains(&rate));
    }
}

/// Hierarchy latencies are monotone: every access costs at least an L1 hit
/// and at most a memory access.
#[test]
fn hierarchy_latency_bounds() {
    for case in 0..CASES {
        let mut rng = rng_for(6, case);
        let addrs: Vec<u64> = (0..rng.gen_range_usize(1, 200))
            .map(|_| rng.gen_range_u64(0, 1 << 24))
            .collect();
        let mut h = CacheHierarchy::default();
        for &a in &addrs {
            let lat = h.access(a);
            assert!(lat >= h.l1_lat && lat <= h.mem_lat);
        }
    }
}

/// UnitPool scheduling: work is conserved (sum of spans = sum of costs)
/// and the makespan is within the list-scheduling bound.
#[test]
fn pool_schedules_conservatively() {
    for case in 0..CASES {
        let mut rng = rng_for(7, case);
        let costs: Vec<u64> = (0..rng.gen_range_usize(1, 64))
            .map(|_| rng.gen_range_u64(1, 10_000))
            .collect();
        let units = rng.gen_range_usize(1, 16);
        let mut p = UnitPool::new(units);
        let mut spans = 0u64;
        for &c in &costs {
            let pl = p.assign(Cycles(c), Cycles::ZERO);
            assert_eq!(pl.end - pl.start, Cycles(c));
            spans += c;
        }
        let total: u64 = costs.iter().sum();
        assert_eq!(spans, total);
        let makespan = p.busy_until().0;
        let max_c = *costs.iter().max().unwrap();
        // Greedy list scheduling: makespan <= total/units + max job.
        assert!(makespan <= total / units as u64 + max_c);
        assert!(makespan >= total / units as u64);
        assert!(makespan >= max_c);
    }
}

/// Noise is deterministic under reset and across equal seeds.
#[test]
fn noise_deterministic() {
    for case in 0..CASES {
        let mut rng = rng_for(8, case);
        let sigma = rng.gen_range_f64(0.0, 0.2);
        let seed = rng.next_u64();
        let mut n1 = NoiseModel::new(sigma, seed);
        let mut n2 = NoiseModel::new(sigma, seed);
        for _ in 0..20 {
            assert_eq!(n1.perturb(Cycles(1_000_000)), n2.perturb(Cycles(1_000_000)));
        }
        n1.reset();
        let mut n3 = NoiseModel::new(sigma, seed);
        assert_eq!(n1.perturb(Cycles(123_456)), n3.perturb(Cycles(123_456)));
    }
}

/// The work pool returns results in job order for any job count and any
/// worker count, including workers > jobs and jobs > workers.
#[test]
fn executor_order_invariant() {
    for case in 0..CASES / 4 {
        let mut rng = rng_for(9, case);
        let n = rng.gen_range_usize(0, 200);
        let threads = rng.gen_range_usize(1, 12);
        let exec = Executor::new(threads);
        let got = exec.run_ordered(n, |i| i.wrapping_mul(2654435761));
        let want: Vec<usize> = (0..n).map(|i| i.wrapping_mul(2654435761)).collect();
        assert_eq!(got, want);
    }
}
