//! Device-level budget/preemption contract, independent of the runtime's
//! degradation machinery:
//!
//! * a budgeted launch that would overrun is cooperatively preempted: it
//!   stops executing work-groups, spends at most `budget` priced cycles,
//!   leaves the target buffers untouched and advances no stream;
//! * a budget generous enough to finish changes nothing — the outcome is
//!   bit-identical to the unbudgeted launch;
//! * preemption points are priced-cycle watermarks, so the preemption
//!   itself is bit-identical at any worker-thread count.

use dysel_device::{
    CpuConfig, CpuDevice, Cycles, Device, FaultKind, FaultPlan, FaultRule, LaunchOutcome,
    LaunchRecord, LaunchSpec, StreamId,
};
use dysel_kernel::{Args, Buffer, KernelIr, Space, UnitRange, Variant, VariantMeta};

const N: u64 = 1024;

/// `out[u] = 2*in[u] + 1` per unit — one written element per unit, so any
/// rolled-back write is observable.
fn writer(name: &str) -> Variant {
    Variant::from_fn(
        VariantMeta::new(name, KernelIr::regular(vec![0])),
        |ctx, args| {
            for u in ctx.units().iter() {
                let x = args.f32(1).unwrap()[u as usize];
                args.f32_mut(0).unwrap()[u as usize] = 2.0 * x + 1.0;
                ctx.vector_compute(1, 8, 8, 1);
            }
        },
    )
}

fn fresh_args() -> Args {
    let mut a = Args::new();
    a.push(Buffer::f32("out", vec![0.0; N as usize], Space::Global));
    a.push(Buffer::f32(
        "in",
        (0..N).map(|i| i as f32).collect(),
        Space::Global,
    ));
    a
}

fn device(threads: usize, plan: Option<FaultPlan>) -> CpuDevice {
    let mut dev = CpuDevice::new(CpuConfig {
        threads,
        ..CpuConfig::noiseless()
    });
    dev.set_fault_plan(plan);
    dev
}

fn launch(
    dev: &mut CpuDevice,
    v: &Variant,
    args: &mut Args,
    budget: Option<Cycles>,
) -> LaunchOutcome {
    dev.launch(LaunchSpec {
        kernel: v.kernel.as_ref(),
        meta: &v.meta,
        units: UnitRange::new(0, N),
        args,
        stream: StreamId(0),
        not_before: Cycles::ZERO,
        measured: true,
        budget,
    })
}

/// The unbudgeted healthy reference: record plus output bits.
fn healthy_run() -> (LaunchRecord, Vec<u32>) {
    let mut dev = device(1, None);
    let v = writer("w");
    let mut a = fresh_args();
    let rec = launch(&mut dev, &v, &mut a, None).unwrap_done();
    let bits = a.f32(0).unwrap().iter().map(|y| y.to_bits()).collect();
    (rec, bits)
}

#[test]
fn budget_preempts_a_hung_launch_and_rolls_everything_back() {
    let (healthy, _) = healthy_run();
    assert!(healthy.groups > 1, "need multiple work-groups to preempt");
    // A hang*64 launch under an 8x-healthy budget must stop early: each
    // hung group costs 64x its healthy price, so the budget affords well
    // under an eighth of the groups.
    let budget = Cycles::from_f64(healthy.busy.as_f64() * 8.0);
    let plan = FaultPlan::new(0).with(FaultRule::new("w", FaultKind::Hang(64)));
    let mut dev = device(1, Some(plan));
    let v = writer("w");
    let mut a = fresh_args();
    let p = launch(&mut dev, &v, &mut a, Some(budget))
        .preempted()
        .expect("hang*64 under an 8x budget must preempt");
    // The watermark is strict: at most `budget` priced cycles were spent,
    // and the launch stopped executing groups the moment it would overrun.
    assert!(
        p.cycles_spent <= budget,
        "spent {} > budget {budget}",
        p.cycles_spent
    );
    assert!(p.groups_done > 0, "the first groups fit under the budget");
    assert!(
        p.groups_done < healthy.groups,
        "preemption must cut the launch short ({} groups)",
        healthy.groups
    );
    // Rollback: no write reached the target, no stream advanced, and the
    // fault ledger still records the (interrupted) hang injection.
    assert!(a.f32(0).unwrap().iter().all(|y| *y == 0.0));
    assert_eq!(dev.stream_end(StreamId(0)), Cycles::ZERO);
    assert_eq!(
        dev.fault_plan()
            .unwrap()
            .injected_count(FaultKind::Hang(64)),
        1
    );
}

#[test]
fn zero_budget_preempts_before_the_first_group() {
    let plan = FaultPlan::new(0).with(FaultRule::new("w", FaultKind::Hang(64)));
    let mut dev = device(1, Some(plan));
    let v = writer("w");
    let mut a = fresh_args();
    let p = launch(&mut dev, &v, &mut a, Some(Cycles::ZERO))
        .preempted()
        .expect("a zero budget affords no group at all");
    assert_eq!(p.groups_done, 0);
    assert_eq!(p.cycles_spent, Cycles::ZERO);
    assert!(a.f32(0).unwrap().iter().all(|y| *y == 0.0));
}

#[test]
fn generous_budget_is_bit_identical_to_unbudgeted() {
    let (healthy, bits) = healthy_run();
    let budget = Cycles::from_f64(healthy.busy.as_f64() * 1000.0);
    let mut dev = device(1, None);
    let v = writer("w");
    let mut a = fresh_args();
    let rec = launch(&mut dev, &v, &mut a, Some(budget)).unwrap_done();
    assert_eq!(rec, healthy, "a budget that never fires must be invisible");
    let budgeted: Vec<u32> = a.f32(0).unwrap().iter().map(|y| y.to_bits()).collect();
    assert_eq!(budgeted, bits);
    assert_eq!(dev.stream_end(StreamId(0)), rec.end);
}

#[test]
fn preemption_is_bit_identical_across_worker_threads() {
    let (healthy, _) = healthy_run();
    let budget = Cycles::from_f64(healthy.busy.as_f64() * 8.0);
    let run = |threads: usize| {
        let plan = FaultPlan::new(0).with(FaultRule::new("w", FaultKind::Hang(64)));
        let mut dev = device(threads, Some(plan));
        let v = writer("w");
        let mut a = fresh_args();
        launch(&mut dev, &v, &mut a, Some(budget))
            .preempted()
            .expect("hang*64 under an 8x budget must preempt")
    };
    let baseline = run(1);
    for threads in [2usize, 8] {
        assert_eq!(run(threads), baseline, "{threads} threads diverged");
    }
}
