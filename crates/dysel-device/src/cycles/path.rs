//! Runtime selection between the scalar reference pricing path and the
//! batched fast path.
//!
//! Both paths are required to produce **bit-identical** timelines (see
//! DESIGN.md §4.15): integer-count trace reductions (segment counts,
//! distinct lines, conflict degrees) may be computed by any algorithm as
//! long as the counts agree, while every `f64` accumulation keeps the
//! scalar path's exact operation order. The switch therefore exists for
//! two reasons only: to keep the simple scalar code as the executable
//! reference that the `pricing_diff` differential suite compares against,
//! and as an escape hatch (`DYSEL_PRICING=scalar`) if a platform ever
//! miscompiles the chunked helpers.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Which implementation the device cost sinks use to reduce traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PricingPath {
    /// Element-by-element reference implementation (allocating, simple).
    Scalar,
    /// Chunked fixed-width-lane implementation (allocation-free hot path).
    Batched,
}

/// Process-wide override; 0 = unset (fall back to the environment).
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// `DYSEL_PRICING` is read once; later environment changes are ignored.
static FROM_ENV: OnceLock<PricingPath> = OnceLock::new();

fn env_default() -> PricingPath {
    *FROM_ENV.get_or_init(|| match std::env::var("DYSEL_PRICING").as_deref() {
        Ok("scalar") => PricingPath::Scalar,
        _ => PricingPath::Batched,
    })
}

/// The pricing path new device cost models will use.
///
/// Precedence: programmatic [`set_pricing_path`] override, then the
/// `DYSEL_PRICING` environment variable (`scalar` forces the reference
/// path), then the batched default.
pub fn pricing_path() -> PricingPath {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => PricingPath::Scalar,
        2 => PricingPath::Batched,
        _ => env_default(),
    }
}

/// Forces the pricing path for the whole process (used by the differential
/// tests to run the same workload through both implementations). Pass
/// `None` to fall back to the environment default again.
///
/// Devices read the path when they price a launch, so the switch takes
/// effect for the next launch, not retroactively.
pub fn set_pricing_path(path: Option<PricingPath>) {
    let v = match path {
        None => 0,
        Some(PricingPath::Scalar) => 1,
        Some(PricingPath::Batched) => 2,
    };
    OVERRIDE.store(v, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_wins_and_clears() {
        // Not racing other tests: this is the only test that sets the
        // override inside this crate's unit-test binary, and integration
        // tests run in their own processes.
        set_pricing_path(Some(PricingPath::Scalar));
        assert_eq!(pricing_path(), PricingPath::Scalar);
        set_pricing_path(Some(PricingPath::Batched));
        assert_eq!(pricing_path(), PricingPath::Batched);
        set_pricing_path(None);
        let _ = pricing_path(); // env default; value depends on DYSEL_PRICING
    }
}
