//! Virtual time, measured in device cycles, plus the batched pricing fast
//! path that produces it: portable fixed-width lane helpers ([`lanes`]) and
//! the runtime scalar/batched selection switch ([`path`]).

pub mod lanes;
pub mod path;

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in (or span of) virtual time, in device cycles.
///
/// All DySel executions are scheduled in virtual device time produced by
/// the deterministic device models, so experiments regenerate identically
/// on any host.
///
/// # Example
///
/// ```
/// use dysel_device::Cycles;
/// let t = Cycles(100) + Cycles(20);
/// assert_eq!(t, Cycles(120));
/// assert_eq!(t.ratio_over(Cycles(60)), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);
    /// The maximum representable time.
    pub const MAX: Cycles = Cycles(u64::MAX);

    /// Builds a span from a floating-point cycle count (rounds up, clamps
    /// negatives to zero).
    pub fn from_f64(c: f64) -> Cycles {
        if c <= 0.0 {
            Cycles(0)
        } else {
            Cycles(c.ceil() as u64)
        }
    }

    /// The raw cycle count as `f64`.
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// `self / other` as a float; `other == 0` yields `f64::INFINITY` for a
    /// nonzero numerator and `1.0` for zero (a degenerate but comparable
    /// ratio for empty baselines).
    pub fn ratio_over(self, other: Cycles) -> f64 {
        if other.0 == 0 {
            if self.0 == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.as_f64() / other.as_f64()
        }
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(other.0))
    }

    /// The later of two instants.
    pub fn max(self, other: Cycles) -> Cycles {
        Cycles(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: Cycles) -> Cycles {
        Cycles(self.0.min(other.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        *self = *self + rhs;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(
            self.0
                .checked_sub(rhs.0)
                .expect("cycle subtraction underflow"),
        )
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Cycles {
    type Output = Cycles;
    fn div(self, rhs: u64) -> Cycles {
        Cycles(self.0 / rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        assert_eq!(Cycles(5) + Cycles(7), Cycles(12));
        assert_eq!(Cycles(9) - Cycles(4), Cycles(5));
        assert_eq!(Cycles(3) * 4, Cycles(12));
        assert_eq!(Cycles(12) / 4, Cycles(3));
        let s: Cycles = [Cycles(1), Cycles(2), Cycles(3)].into_iter().sum();
        assert_eq!(s, Cycles(6));
    }

    #[test]
    fn ratio_edges() {
        assert_eq!(Cycles(10).ratio_over(Cycles(5)), 2.0);
        assert_eq!(Cycles(0).ratio_over(Cycles(0)), 1.0);
        assert!(Cycles(3).ratio_over(Cycles(0)).is_infinite());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = Cycles(1) - Cycles(2);
    }

    #[test]
    fn from_f64_rounds_up_and_clamps() {
        assert_eq!(Cycles::from_f64(2.1), Cycles(3));
        assert_eq!(Cycles::from_f64(-5.0), Cycles(0));
    }
}
