//! Portable fixed-width integer-lane helpers for the batched pricing path.
//!
//! These are "u64x"-style chunked operations written as plain arrays of
//! [`LANES`] elements so the compiler can keep them in vector registers on
//! any target, with scalar tails for the remainder. Every helper is an
//! exact drop-in for a scalar reduction in the device cost models: it must
//! return the *same integer* the scalar code computes (the batched-pricing
//! determinism contract, DESIGN.md §4.15), it is just allowed to get there
//! without allocating or sorting when the structure of the address set
//! permits.

/// Fixed chunk width for lane-parallel loops (eight 64-bit lanes = one
/// 512-bit vector, two 256-bit ops, or four 128-bit ops — all common).
pub const LANES: usize = 8;

/// Computes both memory-segment bounds `a / seg` and `(a + elem - 1) / seg`
/// for every address, appending them to `out` (cleared first). Chunked
/// counterpart of the `flat_map` in the scalar `gather_segments`; the
/// caller still sorts/counts, but reuses `out` across calls so the hot
/// path performs no allocation once warm.
pub fn seg_bounds_u64(addrs: &[u64], elem: u32, seg: u64, out: &mut Vec<u64>) {
    out.clear();
    out.reserve(addrs.len() * 2);
    let e = u64::from(elem);
    let mut chunks = addrs.chunks_exact(LANES);
    for c in &mut chunks {
        let mut first = [0u64; LANES];
        let mut last = [0u64; LANES];
        for i in 0..LANES {
            first[i] = c[i] / seg;
            last[i] = (c[i] + e - 1) / seg;
        }
        for i in 0..LANES {
            out.push(first[i]);
            out.push(last[i]);
        }
    }
    for &a in chunks.remainder() {
        out.push(a / seg);
        out.push((a + e - 1) / seg);
    }
}

/// Sorts `vals` and returns the number of distinct values. Equivalent to
/// `sort_unstable(); dedup(); len()` without the dedup compaction pass.
pub fn distinct_sorted_u64(vals: &mut [u64]) -> u32 {
    vals.sort_unstable();
    let mut n = 0u32;
    let mut last = None;
    for &v in vals.iter() {
        if last != Some(v) {
            n += 1;
            last = Some(v);
        }
    }
    n
}

/// Number of distinct values in the multiset
/// `{ (base + l*stride) / div, (base + l*stride + span) / div : 0 <= l < lanes }`
/// using Rust's truncating `i64` division, without materializing it.
///
/// This is the affine special case behind `coalesced_segments`: because
/// truncating division by a positive divisor is monotone non-decreasing in
/// the dividend, both the `first` and `last` bound sequences are monotone
/// in `l` (after flipping a negative stride), so a two-pointer merge counts
/// distinct values in O(lanes) with no sort and no allocation. Requires
/// `div > 0`; `span` may be any value (callers pass `elem - 1`).
pub fn affine_distinct_i64(base: i64, stride: i64, lanes: u32, span: i64, div: i64) -> u32 {
    debug_assert!(div > 0);
    if lanes == 0 {
        return 0;
    }
    // Normalize to a non-negative stride: the multiset of lane addresses is
    // unchanged when walked from the other end.
    let (base, stride) = if stride < 0 {
        (base + i64::from(lanes - 1) * stride, -stride)
    } else {
        (base, stride)
    };
    let first = |l: i64| (base + l * stride) / div;
    let last = |l: i64| (base + l * stride + span) / div;
    let n = i64::from(lanes);
    let (mut i, mut j) = (0i64, 0i64);
    let mut count = 0u32;
    let mut prev = None;
    // Merge the two monotone sequences, counting distinct emitted values.
    while i < n || j < n {
        let v = if j >= n || (i < n && first(i) <= last(j)) {
            i += 1;
            first(i - 1)
        } else {
            j += 1;
            last(j - 1)
        };
        if prev != Some(v) {
            count += 1;
            prev = Some(v);
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar reference: exactly what `coalesced_segments` does.
    fn affine_reference(base: i64, stride: i64, lanes: u32, span: i64, div: i64) -> u32 {
        let mut v: Vec<i64> = (0..lanes)
            .flat_map(|l| {
                let a = base + i64::from(l) * stride;
                [a / div, (a + span) / div]
            })
            .collect();
        v.sort_unstable();
        v.dedup();
        v.len() as u32
    }

    #[test]
    fn affine_matches_reference_across_shapes() {
        let divs = [32i64, 128];
        let strides = [-640i64, -128, -7, -1, 0, 1, 3, 4, 8, 127, 128, 129, 4096];
        let bases = [0i64, 1, 63, 64, 1 << 20, (1 << 40) + 13];
        let spans = [0i64, 3, 7, 127];
        for &div in &divs {
            for &stride in &strides {
                for &base in &bases {
                    for &span in &spans {
                        for lanes in [0u32, 1, 2, 7, 32, 33] {
                            assert_eq!(
                                affine_distinct_i64(base, stride, lanes, span, div),
                                affine_reference(base, stride, lanes, span, div),
                                "base={base} stride={stride} lanes={lanes} span={span} div={div}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn affine_handles_negative_addresses() {
        // Truncating division differs from floor for negatives; the merge
        // must still agree with the sort-based reference.
        for &base in &[-1000i64, -129, -1] {
            for &stride in &[-64i64, -3, 5, 96] {
                assert_eq!(
                    affine_distinct_i64(base, stride, 32, 3, 128),
                    affine_reference(base, stride, 32, 3, 128),
                    "base={base} stride={stride}"
                );
            }
        }
    }

    #[test]
    fn seg_bounds_match_flat_map() {
        let addrs: Vec<u64> = (0..37)
            .map(|i| 1_000_003u64.wrapping_mul(i) % 65536)
            .collect();
        let mut out = Vec::new();
        seg_bounds_u64(&addrs, 4, 128, &mut out);
        let mut expect: Vec<u64> = addrs
            .iter()
            .flat_map(|&a| [a / 128, (a + 3) / 128])
            .collect();
        let mut got = out.clone();
        got.sort_unstable();
        expect.sort_unstable();
        assert_eq!(got, expect);
        // Reuse keeps capacity and clears old contents.
        seg_bounds_u64(&addrs[..3], 4, 128, &mut out);
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn distinct_sorted_counts_like_dedup() {
        let mut v = vec![5u64, 1, 5, 3, 3, 3, 9];
        assert_eq!(distinct_sorted_u64(&mut v), 4);
        let mut empty: Vec<u64> = vec![];
        assert_eq!(distinct_sorted_u64(&mut empty), 0);
    }
}
