//! Deterministic device timing models for DySel.
//!
//! The paper evaluates DySel on real hardware (an Intel i7-3820 CPU and an
//! NVIDIA K20c GPU). This reproduction substitutes deterministic timing
//! models that functionally execute kernels (real outputs) while scheduling
//! them in *virtual device time*:
//!
//! * [`CpuDevice`] — cores with private L1/L2/LLC-share cache simulation
//!   driven by each work-group's memory trace, a SIMD cost model with
//!   divergence masking overhead, and greedy earliest-free-core scheduling
//!   (the deterministic analogue of TBB work stealing).
//! * [`GpuDevice`] — streaming multiprocessors executing 32-lane warps with
//!   global-memory coalescing, per-SM texture caches, constant broadcast,
//!   scratchpad banking, occupancy limits, in-order streams and in-kernel
//!   cycle counters.
//!
//! Both implement the [`Device`] trait the DySel runtime drives. All
//! randomness (measurement noise) is seeded, so every experiment in the
//! paper's evaluation regenerates bit-identically.
//!
//! Functional execution of work-groups runs on a std-only work pool (the
//! [`Executor`]); the virtual-time pricing pass stays serial and consumes
//! results in canonical work-group order, so outputs, measurements and
//! selections are bit-identical at any worker-thread count (the two-phase
//! launch engine in `exec.rs`).
//!
//! # Example
//!
//! ```
//! use dysel_device::{CpuConfig, CpuDevice, Device, DeviceKind};
//!
//! let mut cpu = CpuDevice::new(CpuConfig::default());
//! assert_eq!(cpu.kind(), DeviceKind::Cpu);
//! cpu.reset();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpu;
pub mod cycles;
mod device;
mod exec;
mod fault;
pub mod gpu;
mod noise;
mod sched;

pub use cpu::{CacheConfig, CacheHierarchy, CpuConfig, CpuDevice, SetAssocCache};
pub use cycles::path::{pricing_path, set_pricing_path, PricingPath};
pub use cycles::Cycles;
pub use device::{
    BatchEntry, BudgetPolicy, Device, DeviceKind, LaunchFailure, LaunchOutcome, LaunchPreemption,
    LaunchRecord, LaunchSpec, StreamId,
};
pub use exec::Executor;
pub use fault::{
    FaultKind, FaultPlan, FaultPlanParseError, FaultRule, InjectedFault, DEFAULT_HANG_FACTOR,
};
pub use gpu::{GpuConfig, GpuDevice, GpuGeneration};
pub use noise::NoiseModel;
pub use sched::{Placement, UnitPool};
