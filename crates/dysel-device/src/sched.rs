//! Execution-unit scheduling shared by the device models.

use crate::Cycles;

/// A pool of execution units (CPU cores or GPU SMs), each with a
/// next-free-time. Work is assigned greedily to the earliest-free unit —
/// the deterministic analogue of a work-stealing scheduler (CPU, TBB in the
/// paper) or the hardware group dispatcher (GPU).
#[derive(Debug, Clone)]
pub struct UnitPool {
    free_at: Vec<Cycles>,
}

/// Outcome of placing one task on the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Unit the task ran on.
    pub unit: usize,
    /// Start time (>= requested earliest start).
    pub start: Cycles,
    /// Completion time.
    pub end: Cycles,
}

impl UnitPool {
    /// Creates a pool of `n` units, all free at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a device needs at least one execution unit");
        UnitPool {
            free_at: vec![Cycles::ZERO; n],
        }
    }

    /// Number of units.
    pub fn len(&self) -> usize {
        self.free_at.len()
    }

    /// Whether the pool has no units (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.free_at.is_empty()
    }

    /// Assigns a task of `cost` cycles, starting no earlier than
    /// `not_before`, to the earliest-free unit.
    pub fn assign(&mut self, cost: Cycles, not_before: Cycles) -> Placement {
        let unit = self.earliest_unit();
        let start = self.free_at[unit].max(not_before);
        let end = start + cost;
        self.free_at[unit] = end;
        Placement { unit, start, end }
    }

    /// Assigns a task to a *specific* unit (used when per-unit state, such
    /// as a core's cache, must be consulted before the task runs).
    ///
    /// # Panics
    ///
    /// Panics if `unit` is out of range.
    pub fn assign_to(&mut self, unit: usize, cost: Cycles, not_before: Cycles) -> Placement {
        let start = self.free_at[unit].max(not_before);
        let end = start + cost;
        self.free_at[unit] = end;
        Placement { unit, start, end }
    }

    /// Index of the unit that frees up first (ties: lowest index).
    pub fn earliest_unit(&self) -> usize {
        self.free_at
            .iter()
            .enumerate()
            .min_by_key(|&(_, &t)| t)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Earliest time any unit is free.
    pub fn earliest_free(&self) -> Cycles {
        self.free_at.iter().copied().min().unwrap_or(Cycles::ZERO)
    }

    /// Time at which every unit is idle.
    pub fn busy_until(&self) -> Cycles {
        self.free_at.iter().copied().max().unwrap_or(Cycles::ZERO)
    }

    /// Per-unit next-free times (diagnostics).
    pub fn free_times(&self) -> &[Cycles] {
        &self.free_at
    }

    /// Resets all units to free-at-zero.
    pub fn reset(&mut self) {
        self.free_at.fill(Cycles::ZERO);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_assignment_balances_load() {
        let mut p = UnitPool::new(2);
        let a = p.assign(Cycles(10), Cycles::ZERO);
        let b = p.assign(Cycles(10), Cycles::ZERO);
        let c = p.assign(Cycles(5), Cycles::ZERO);
        assert_ne!(a.unit, b.unit);
        assert_eq!(c.start, Cycles(10));
        assert_eq!(p.busy_until(), Cycles(15));
        assert_eq!(p.earliest_free(), Cycles(10));
    }

    #[test]
    fn not_before_delays_start() {
        let mut p = UnitPool::new(1);
        let a = p.assign(Cycles(3), Cycles(100));
        assert_eq!(a.start, Cycles(100));
        assert_eq!(a.end, Cycles(103));
    }

    #[test]
    fn reset_clears_time() {
        let mut p = UnitPool::new(3);
        p.assign(Cycles(50), Cycles::ZERO);
        p.reset();
        assert_eq!(p.busy_until(), Cycles::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_pool_rejected() {
        let _ = UnitPool::new(0);
    }
}
