//! Deterministic multicore CPU timing model.
//!
//! Mirrors the paper's CPU target (an Intel i7-3820 driven through Intel's
//! OpenCL stack with TBB-style scheduling, §3.2): a handful of cores, a
//! private cache hierarchy per core, SIMD execution with
//! masking/packing/unpacking overheads under control divergence, and a
//! work-stealing scheduler where profiling tasks take priority simply by
//! being issued first.

mod cache;

pub use cache::{CacheConfig, CacheHierarchy, SetAssocCache};

use std::sync::Arc;

use dysel_kernel::{Args, MemOp, Space, TraceSink, TraceView, VariantMeta};
use dysel_obs::EventSink;

use crate::cycles::{lanes, path::PricingPath};
use crate::device::{
    BatchEntry, BudgetPolicy, Device, DeviceKind, LaunchOutcome, LaunchSpec, StreamId, StreamTable,
};
use crate::exec::{launch_batch_engine, Executor, PriceModel};
use crate::fault::FaultPlan;
use crate::noise::NoiseModel;
use crate::sched::UnitPool;
use crate::Cycles;

/// CPU model parameters.
#[derive(Debug, Clone)]
pub struct CpuConfig {
    /// Number of cores (execution units).
    pub cores: u32,
    /// Scalar arithmetic throughput, ops per cycle.
    pub ipc: f64,
    /// L1d configuration.
    pub l1: CacheConfig,
    /// L2 configuration.
    pub l2: CacheConfig,
    /// Per-core LLC share configuration.
    pub l3: CacheConfig,
    /// Cycles to pack/unpack one gathered lane (no hardware gather).
    pub gather_pack_cycles: f64,
    /// Masking/blending overhead per *divergent* vector iteration,
    /// multiplied by the vector width (wider SIMD ⇒ larger overhead, §1).
    pub mask_cycles_per_lane: f64,
    /// Extra cycles for an atomic RMW beyond the cache access.
    pub atomic_extra_cycles: f64,
    /// Cost of a work-group barrier: on a CPU, a barrier forces loop
    /// fission / work-item context switches across the serialized group.
    pub barrier_cycles: f64,
    /// Per-launch task-spawn overhead.
    pub launch_overhead: Cycles,
    /// Host-side status-query cost (nearly free on the CPU).
    pub query_latency: Cycles,
    /// Relative std-dev of measurement noise (CPUs are noisy, §5.2).
    pub noise_sigma: f64,
    /// Relative std-dev of per-work-group *execution* jitter (system noise;
    /// creates the profiling drain tails that asynchronous DySel fills).
    pub exec_sigma: f64,
    /// Noise seed.
    pub seed: u64,
    /// Worker threads for the functional phase of launches (0 = one per
    /// available host core). Any value yields bit-identical results; see
    /// [`crate::Executor`].
    pub threads: usize,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            cores: 4,
            ipc: 2.0,
            l1: CacheConfig::l1d(),
            l2: CacheConfig::l2(),
            l3: CacheConfig::llc_share(),
            gather_pack_cycles: 2.0,
            mask_cycles_per_lane: 3.0,
            atomic_extra_cycles: 20.0,
            barrier_cycles: 150.0,
            launch_overhead: Cycles(3000),
            query_latency: Cycles(120),
            noise_sigma: 0.02,
            exec_sigma: 0.01,
            seed: 0xD75E1,
            threads: 0,
        }
    }
}

impl CpuConfig {
    /// A quieter configuration for tests (zero noise).
    pub fn noiseless() -> Self {
        CpuConfig {
            noise_sigma: 0.0,
            exec_sigma: 0.0,
            ..CpuConfig::default()
        }
    }
}

/// Prices one work-group's trace against a core's cache hierarchy.
struct CpuCostSink<'a> {
    cfg: &'a CpuConfig,
    cache: &'a mut CacheHierarchy,
    /// Use the chunked fast path for lane address/line-id computation.
    /// Both paths must produce identical cost streams (DESIGN.md §4.15).
    batched: bool,
    mem_cycles: f64,
    compute_cycles: f64,
    /// Last line touched by recent vector accesses: the hardware
    /// prefetcher tracks a few streams, so a warp/vector op that continues
    /// one of them gets its line fetches largely hidden.
    stream_tails: [i64; 4],
    next_tail: usize,
}

impl<'a> CpuCostSink<'a> {
    fn new(cfg: &'a CpuConfig, cache: &'a mut CacheHierarchy, path: PricingPath) -> Self {
        CpuCostSink {
            cfg,
            cache,
            batched: path == PricingPath::Batched,
            mem_cycles: 0.0,
            compute_cycles: 0.0,
            stream_tails: [i64::MIN; 4],
            next_tail: 0,
        }
    }

    /// One vector load/store issue: a hierarchy access per distinct
    /// consecutive line among the lanes.
    fn warp_lanes(&mut self, base: i64, stride: i64, lanes_n: u32) {
        if stride == 0 {
            self.mem_cycles += self.cache.access(base as u64) as f64;
            return;
        }
        if self.batched {
            // Compute lane addresses and line ids a fixed-width chunk at a
            // time (vectorizable), then walk the precomputed ids. The
            // `vector_line_access` call sequence is identical to the
            // scalar form, so the f64 accumulation is bit-exact.
            const W: usize = lanes::LANES;
            let line = i64::from(self.cache.line());
            let mut prev_line = i64::MIN;
            let n = lanes_n as usize;
            let mut l = 0usize;
            while l < n {
                let c = (n - l).min(W);
                let mut addrs = [0i64; W];
                let mut lns = [0i64; W];
                for k in 0..c {
                    addrs[k] = base + (l + k) as i64 * stride;
                    lns[k] = addrs[k] / line;
                }
                for k in 0..c {
                    if lns[k] != prev_line {
                        self.mem_cycles += self.vector_line_access(addrs[k] as u64);
                        prev_line = lns[k];
                    }
                }
                l += c;
            }
        } else {
            // Reference form: one division and branch per lane.
            let line = i64::from(self.cache.line());
            let mut prev_line = i64::MIN;
            for l in 0..lanes_n {
                let addr = base + i64::from(l) * stride;
                let ln = addr / line;
                if ln != prev_line {
                    self.mem_cycles += self.vector_line_access(addr as u64);
                    prev_line = ln;
                }
            }
        }
    }

    /// Accesses `addr`, charging a prefetched cost if the line continues a
    /// tracked stream (and recording it as a stream tail either way).
    fn vector_line_access(&mut self, addr: u64) -> f64 {
        let line = (addr / u64::from(self.cache.line())) as i64;
        let lat = self.cache.access(addr) as f64;
        let prefetched = self.cache.l1_lat as f64 + 2.0;
        let continues = self
            .stream_tails
            .iter()
            .any(|&t| t != i64::MIN && (line == t || line == t + 1));
        if let Some(slot) = self
            .stream_tails
            .iter_mut()
            .find(|t| **t != i64::MIN && (line == **t || line == **t + 1))
        {
            *slot = line;
        } else {
            self.stream_tails[self.next_tail] = line;
            self.next_tail = (self.next_tail + 1) % self.stream_tails.len();
        }
        if continues {
            lat.min(prefetched)
        } else {
            lat
        }
    }

    fn total(&self) -> Cycles {
        Cycles::from_f64(self.mem_cycles + self.compute_cycles)
    }

    /// Shared pricing for gathers, whether they arrive as an owned
    /// [`MemOp::Gather`] or through the allocation-free slice entry point.
    ///
    /// No hardware gather (AVX1-class): each lane is a scalar load plus
    /// register insert/extract traffic. Gathers wider than one 128-bit half
    /// (4 lanes) pay extra cross-lane insertion work — the masking/packing
    /// overhead that "gets larger with wider SIMD datapath width" (§1).
    fn price_gather(&mut self, addrs: &[u64]) {
        for &a in addrs {
            self.mem_cycles += self.cache.access(a) as f64;
        }
        // A single-lane "gather" is just a scalar load with a computed
        // address: no packing work.
        if addrs.len() > 1 {
            let lanes = addrs.len() as f64;
            let widen = if addrs.len() > 4 { 3.0 } else { 1.0 };
            self.mem_cycles += lanes * self.cfg.gather_pack_cycles * widen;
        }
    }

    /// Walk a strided stream through the hierarchy, charging a full cache
    /// access per distinct line and an L1-hit latency for same-line reuse.
    ///
    /// Constant-stride streams engage the hardware prefetcher: after a
    /// two-line ramp-up, line fetches are charged a small prefetched cost
    /// (the data still moves through the cache model, so capacity effects
    /// remain). Strides beyond 256 bytes defeat the streamer.
    fn stream_cost(&mut self, base: u64, count: u64, stride: i64) -> f64 {
        if count == 0 {
            return 0.0;
        }
        let line = i64::from(self.cache.line());
        let l1 = self.cache.l1_lat as f64;
        let prefetched = l1 + 2.0;
        let prefetchable = stride != 0 && stride.unsigned_abs() <= 256;
        let mut lines_seen = 0u64;
        let mut cost = 0.0;
        if stride == 0 {
            cost += self.cache.access(base) as f64;
            cost += (count - 1) as f64 * l1;
            return cost;
        }
        let mut line_access = |cache: &mut CacheHierarchy, addr: u64| -> f64 {
            let lat = cache.access(addr) as f64;
            lines_seen += 1;
            if prefetchable && lines_seen > 1 {
                lat.min(prefetched)
            } else {
                lat
            }
        };
        if stride.unsigned_abs() < line as u64 {
            // Several consecutive elements share a line: charge the line
            // once, the rest are L1 hits.
            let per_line = (line / stride.abs()).max(1) as u64;
            let mut i = 0u64;
            let mut addr = base as i64;
            while i < count {
                let n = per_line.min(count - i);
                cost += line_access(self.cache, addr as u64);
                cost += (n - 1) as f64 * l1;
                addr += stride * n as i64;
                i += n;
            }
        } else {
            // Every access touches a fresh line.
            let mut addr = base as i64;
            for _ in 0..count {
                cost += line_access(self.cache, addr as u64);
                addr += stride;
            }
        }
        cost
    }
}

impl TraceSink for CpuCostSink<'_> {
    fn mem(&mut self, op: &MemOp) {
        // On a CPU, GPU-specific spaces (texture/constant/scratchpad) all
        // lower to the uniform memory hierarchy — the paper's point that
        // GPU placements "make no difference for CPU" (§4.3) and that
        // scratchpad tiling only adds copy traffic.
        match op {
            MemOp::Warp {
                base,
                stride,
                lanes,
                ..
            } => {
                // A vector load/store: one hierarchy access per distinct
                // line touched by the lanes, with prefetcher coverage when
                // the op continues a tracked stream.
                self.warp_lanes(*base as i64, *stride, *lanes);
            }
            MemOp::WarpSeq {
                base,
                stride,
                lanes,
                repeat,
                step,
                ..
            } => {
                // Expand: each step is one vector access; the cache model
                // needs the real addresses.
                for k in 0..i64::from(*repeat) {
                    self.warp_lanes(*base as i64 + k * step, *stride, *lanes);
                }
            }
            MemOp::Gather { addrs, .. } => self.price_gather(addrs),
            MemOp::Stream {
                base,
                count,
                stride,
                ..
            } => {
                self.mem_cycles += self.stream_cost(*base, *count, *stride);
            }
            MemOp::Atomic { base, lanes, .. } => {
                self.mem_cycles += self.cache.access(*base) as f64
                    + f64::from(*lanes) * self.cfg.atomic_extra_cycles;
            }
            MemOp::Scratchpad { lanes, .. } => {
                // Scratchpad lowers to ordinary (hot, but real) memory:
                // roughly one L1-resident access per lane, slightly
                // amortized by vectorization.
                self.mem_cycles += f64::from(*lanes) * 1.0;
            }
        }
    }

    fn gather(&mut self, _space: Space, addrs: &[u64], _elem: u32, _store: bool) {
        // CPU lowering ignores the space (see `mem` above); price straight
        // off the borrowed slice so the hot path never allocates.
        self.price_gather(addrs);
    }

    fn compute(&mut self, ops: u64) {
        self.compute_cycles += ops as f64 / self.cfg.ipc;
    }

    fn vector_compute(&mut self, iters: u64, width: u32, active: u32, ops_per_iter: u64) {
        // One vector iteration retires `ops_per_iter` vector instructions at
        // scalar-issue throughput; divergence adds masking/blending work
        // that grows with the SIMD width (§1, Fig. 1 discussion).
        let mut per_iter = ops_per_iter as f64 / self.cfg.ipc;
        if active < width {
            per_iter += self.cfg.mask_cycles_per_lane * f64::from(width);
        }
        self.compute_cycles += iters as f64 * per_iter;
    }

    fn barrier(&mut self) {
        self.compute_cycles += self.cfg.barrier_cycles;
    }
}

/// The CPU device model.
///
/// # Example
///
/// ```
/// use dysel_device::{CpuConfig, CpuDevice, Device};
/// let cpu = CpuDevice::new(CpuConfig::default());
/// assert_eq!(cpu.units(), 4);
/// ```
#[derive(Debug)]
pub struct CpuDevice {
    cfg: CpuConfig,
    pool: UnitPool,
    caches: Vec<CacheHierarchy>,
    streams: StreamTable,
    noise: NoiseModel,
    exec_noise: NoiseModel,
    exec: Executor,
    fault: Option<FaultPlan>,
    budget: Option<BudgetPolicy>,
    obs: Option<Arc<EventSink>>,
}

impl CpuDevice {
    /// Builds a CPU device from a configuration.
    pub fn new(cfg: CpuConfig) -> Self {
        let caches = (0..cfg.cores)
            .map(|_| CacheHierarchy::new(cfg.l1, cfg.l2, cfg.l3))
            .collect();
        CpuDevice {
            pool: UnitPool::new(cfg.cores as usize),
            caches,
            noise: NoiseModel::new(cfg.noise_sigma, cfg.seed),
            exec_noise: NoiseModel::new(cfg.exec_sigma, cfg.seed ^ 0x9E37_79B9),
            streams: StreamTable::default(),
            exec: Executor::new(cfg.threads),
            fault: None,
            budget: None,
            obs: None,
            cfg,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    /// The functional-phase executor (exposes the resolved worker count).
    pub fn executor(&self) -> &Executor {
        &self.exec
    }
}

/// Prices recorded traces against per-core cache state for the engine.
struct CpuPriceModel<'a> {
    cfg: &'a CpuConfig,
    caches: &'a mut [CacheHierarchy],
    /// Scalar reference vs batched fast path, pinned for the launch.
    path: PricingPath,
}

impl PriceModel for CpuPriceModel<'_> {
    fn group_cost(&mut self, unit: usize, _meta: &VariantMeta, trace: TraceView<'_>) -> Cycles {
        let mut sink = CpuCostSink::new(self.cfg, &mut self.caches[unit], self.path);
        trace.replay(&mut sink);
        sink.total()
    }
}

impl Default for CpuDevice {
    fn default() -> Self {
        CpuDevice::new(CpuConfig::default())
    }
}

impl Device for CpuDevice {
    fn kind(&self) -> DeviceKind {
        DeviceKind::Cpu
    }

    fn name(&self) -> String {
        format!("cpu/{}-core", self.cfg.cores)
    }

    fn units(&self) -> u32 {
        self.cfg.cores
    }

    fn launch_overhead(&self) -> Cycles {
        self.cfg.launch_overhead
    }

    fn query_latency(&self) -> Cycles {
        self.cfg.query_latency
    }

    fn launch(&mut self, spec: LaunchSpec<'_>) -> LaunchOutcome {
        let entry = BatchEntry {
            kernel: spec.kernel,
            meta: spec.meta,
            units: spec.units,
            target: 0,
            stream: spec.stream,
            not_before: spec.not_before,
            measured: spec.measured,
            budget: spec.budget,
        };
        self.launch_batch(&[entry], &mut [spec.args])
            .pop()
            .expect("one outcome per entry")
    }

    fn launch_batch(
        &mut self,
        entries: &[BatchEntry<'_>],
        targets: &mut [&mut Args],
    ) -> Vec<LaunchOutcome> {
        // Launch overhead overlaps execution of earlier work in the same
        // stream (pipelined enqueue): only the issue side pays it.
        let mut model = CpuPriceModel {
            cfg: &self.cfg,
            caches: &mut self.caches,
            path: crate::cycles::path::pricing_path(),
        };
        launch_batch_engine(
            &self.exec,
            entries,
            targets,
            &mut self.streams,
            &mut self.pool,
            &mut self.exec_noise,
            &mut self.noise,
            self.cfg.launch_overhead,
            &mut model,
            self.fault.as_mut(),
            self.budget,
            self.obs.as_deref(),
        )
    }

    fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan;
    }

    fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    fn set_budget_policy(&mut self, policy: Option<BudgetPolicy>) {
        self.budget = policy;
    }

    fn budget_policy(&self) -> Option<BudgetPolicy> {
        self.budget
    }

    fn set_observer(&mut self, obs: Option<Arc<EventSink>>) {
        self.obs = obs;
    }

    fn observer(&self) -> Option<&Arc<EventSink>> {
        self.obs.as_ref()
    }

    fn stream_end(&self, stream: StreamId) -> Cycles {
        self.streams.end_of(stream)
    }

    fn earliest_unit_free(&self) -> Cycles {
        self.pool.earliest_free()
    }

    fn busy_until(&self) -> Cycles {
        self.pool.busy_until()
    }

    fn reset(&mut self) {
        self.pool.reset();
        self.streams.reset();
        self.noise.reset();
        self.exec_noise.reset();
        for c in &mut self.caches {
            c.reset();
        }
        if let Some(plan) = &mut self.fault {
            plan.reset();
        }
    }
}

// Spaces are intentionally ignored by the CPU model; keep the import used.
const _: fn(Space) -> bool = Space::is_writable;

#[cfg(test)]
mod tests {
    use super::*;
    use dysel_kernel::{Args, Buffer, KernelIr, UnitRange, Variant, VariantMeta};

    fn copy_variant(stride: i64) -> Variant {
        Variant::from_fn(
            VariantMeta::new(format!("copy-stride{stride}"), KernelIr::regular(vec![0]))
                .with_wa_factor(256),
            move |ctx, args| {
                let u = ctx.units();
                let n = args.f32(1).unwrap().len() as u64;
                for i in u.iter() {
                    let src = (i * stride.unsigned_abs()) % n;
                    let v = args.f32(1).unwrap()[src as usize];
                    args.f32_mut(0).unwrap()[i as usize] = v;
                    ctx.stream_load(1, src, 1, 1);
                    ctx.stream_store(0, i, 1, 1);
                }
                ctx.compute(u.len());
            },
        )
    }

    fn args(n: usize) -> Args {
        let mut a = Args::new();
        a.push(Buffer::f32("out", vec![0.0; n], Space::Global));
        a.push(Buffer::f32(
            "in",
            (0..n).map(|i| i as f32).collect(),
            Space::Global,
        ));
        a
    }

    fn run(
        dev: &mut CpuDevice,
        v: &Variant,
        a: &mut Args,
        n: u64,
        measured: bool,
    ) -> crate::device::LaunchRecord {
        dev.launch(LaunchSpec {
            kernel: v.kernel.as_ref(),
            meta: &v.meta,
            units: UnitRange::new(0, n),
            args: a,
            stream: StreamId(0),
            not_before: Cycles::ZERO,
            measured,
            budget: None,
        })
        .unwrap_done()
    }

    #[test]
    fn launch_is_functional_and_scheduled() {
        let mut dev = CpuDevice::new(CpuConfig::noiseless());
        let v = copy_variant(1);
        let mut a = args(1024);
        let rec = run(&mut dev, &v, &mut a, 1024, false);
        assert_eq!(rec.groups, 4);
        assert!(rec.end > rec.start);
        assert_eq!(a.f32(0).unwrap()[100], 100.0);
        assert_eq!(dev.stream_end(StreamId(0)), rec.end);
    }

    #[test]
    fn strided_access_costs_more_than_sequential() {
        // 16 MiB working set: the strided walk misses to DRAM, the
        // sequential walk mostly hits in L1.
        let n = 1 << 22;
        let mut d1 = CpuDevice::new(CpuConfig::noiseless());
        let mut d2 = CpuDevice::new(CpuConfig::noiseless());
        let (v1, v2) = (copy_variant(1), copy_variant(4099));
        let mut a1 = args(n);
        let mut a2 = args(n);
        let seq = run(&mut d1, &v1, &mut a1, n as u64, false).span();
        let strided = run(&mut d2, &v2, &mut a2, n as u64, false).span();
        assert!(
            strided.as_f64() > 2.0 * seq.as_f64(),
            "strided {strided} vs sequential {seq}"
        );
    }

    #[test]
    fn measured_launches_report_a_span() {
        let mut dev = CpuDevice::new(CpuConfig::noiseless());
        let v = copy_variant(1);
        let mut a = args(256);
        let rec = run(&mut dev, &v, &mut a, 256, true);
        assert_eq!(rec.measured, Some(rec.busy));
        assert!(rec.busy >= rec.span());
    }

    #[test]
    fn reset_restores_time_zero_behaviour() {
        let mut dev = CpuDevice::new(CpuConfig::noiseless());
        let v = copy_variant(1);
        let mut a1 = args(512);
        let r1 = run(&mut dev, &v, &mut a1, 512, false);
        dev.reset();
        let mut a2 = args(512);
        let r2 = run(&mut dev, &v, &mut a2, 512, false);
        assert_eq!(r1.span(), r2.span());
        assert_eq!(r1.start, r2.start);
    }

    #[test]
    fn groups_spread_across_cores() {
        // Groups own disjoint 1 KiB slices (wa_factor 256), so per-core
        // locality matches the serial run and 4 cores give ~4x.
        let n = 1 << 20;
        let mut dev = CpuDevice::new(CpuConfig::noiseless());
        let v = copy_variant(1);
        let mut a = args(n);
        let parallel = run(&mut dev, &v, &mut a, n as u64, false).span();
        let mut dev1 = CpuDevice::new(CpuConfig {
            cores: 1,
            ..CpuConfig::noiseless()
        });
        let mut a1 = args(n);
        let serial = run(&mut dev1, &v, &mut a1, n as u64, false).span();
        let speedup = serial.as_f64() / parallel.as_f64();
        assert!(
            (3.0..=4.5).contains(&speedup),
            "speedup {speedup} (serial {serial}, parallel {parallel})"
        );
    }
}
