//! Set-associative cache simulation for the CPU model.

/// Configuration of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line: u32,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> u64 {
        (self.capacity / u64::from(self.line) / u64::from(self.ways)).max(1)
    }

    /// 32 KiB / 8-way / 64 B — an L1d like the i7-3820's.
    pub fn l1d() -> Self {
        CacheConfig {
            capacity: 32 << 10,
            ways: 8,
            line: 64,
        }
    }

    /// 256 KiB / 8-way / 64 B — a per-core L2.
    pub fn l2() -> Self {
        CacheConfig {
            capacity: 256 << 10,
            ways: 8,
            line: 64,
        }
    }

    /// 2.5 MiB / 16-way / 64 B — one core's share of a 10 MiB LLC.
    pub fn llc_share() -> Self {
        CacheConfig {
            capacity: 2560 << 10,
            ways: 16,
            line: 64,
        }
    }
}

/// An LRU set-associative cache over line tags.
///
/// Storage is a single flat tag array (`sets × ways`, front of each set =
/// most recent) plus a per-set occupancy count, so the pricing hot loop
/// walks contiguous memory instead of chasing one heap allocation per set.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    line_shift: u32,
    set_mask: u64,
    /// `ways`-strided tag slots; within a set, LRU order front-to-back.
    tags: Vec<u64>,
    /// Live tags per set (`<= ways`).
    lens: Vec<u16>,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Creates an empty cache.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.line.is_power_of_two(), "line size must be a power of 2");
        let sets = cfg.sets();
        SetAssocCache {
            cfg,
            line_shift: cfg.line.trailing_zeros(),
            set_mask: sets - 1,
            tags: vec![0; (sets * u64::from(cfg.ways)) as usize],
            lens: vec![0; sets as usize],
            hits: 0,
            misses: 0,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Line index of a byte address.
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Accesses the line containing `addr`; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.access_line(self.line_of(addr))
    }

    /// Accesses a pre-computed line index; returns `true` on hit.
    pub fn access_line(&mut self, line: u64) -> bool {
        // Sets are indexed by the low line bits — not perfectly uniform for
        // power-of-two strides, which is exactly the conflict-miss
        // behaviour we want to model.
        let set = (line & self.set_mask) as usize;
        let ways = self.cfg.ways as usize;
        let len = usize::from(self.lens[set]);
        let slots = &mut self.tags[set * ways..set * ways + ways];
        if let Some(pos) = slots[..len].iter().position(|&t| t == line) {
            // Move the hit tag to the MRU front, shifting the rest down.
            slots[..=pos].rotate_right(1);
            self.hits += 1;
            true
        } else {
            // Insert at the front; a full set implicitly drops its LRU tag.
            let keep = len.min(ways - 1);
            slots.copy_within(..keep, 1);
            slots[0] = line;
            self.lens[set] = (keep + 1) as u16;
            self.misses += 1;
            false
        }
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hit rate in `[0, 1]` (1.0 for an untouched cache).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Drops all contents and statistics.
    pub fn reset(&mut self) {
        self.lens.fill(0);
        self.hits = 0;
        self.misses = 0;
    }
}

/// A three-level private hierarchy (L1 → L2 → LLC share → memory) with
/// per-level access latencies in cycles.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: SetAssocCache,
    l2: SetAssocCache,
    l3: SetAssocCache,
    /// L1 hit latency.
    pub l1_lat: u64,
    /// L2 hit latency.
    pub l2_lat: u64,
    /// LLC hit latency.
    pub l3_lat: u64,
    /// DRAM latency.
    pub mem_lat: u64,
}

impl CacheHierarchy {
    /// Builds the default i7-like hierarchy.
    pub fn new(l1: CacheConfig, l2: CacheConfig, l3: CacheConfig) -> Self {
        CacheHierarchy {
            l1: SetAssocCache::new(l1),
            l2: SetAssocCache::new(l2),
            l3: SetAssocCache::new(l3),
            l1_lat: 4,
            l2_lat: 14,
            l3_lat: 42,
            mem_lat: 220,
        }
    }

    /// Line size of the L1 (all levels share it).
    pub fn line(&self) -> u32 {
        self.l1.config().line
    }

    /// Accesses `addr`, returning the latency in cycles.
    pub fn access(&mut self, addr: u64) -> u64 {
        let line = self.l1.line_of(addr);
        if self.l1.access_line(line) {
            self.l1_lat
        } else if self.l2.access_line(line) {
            self.l2_lat
        } else if self.l3.access_line(line) {
            self.l3_lat
        } else {
            self.mem_lat
        }
    }

    /// L1 hit rate (diagnostics).
    pub fn l1_hit_rate(&self) -> f64 {
        self.l1.hit_rate()
    }

    /// Clears all levels.
    pub fn reset(&mut self) {
        self.l1.reset();
        self.l2.reset();
        self.l3.reset();
    }
}

impl Default for CacheHierarchy {
    fn default() -> Self {
        CacheHierarchy::new(
            CacheConfig::l1d(),
            CacheConfig::l2(),
            CacheConfig::llc_share(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_reuse_hits() {
        let mut c = SetAssocCache::new(CacheConfig::l1d());
        assert!(!c.access(0));
        assert!(c.access(4)); // same 64B line
        assert!(c.access(63));
        assert!(!c.access(64)); // next line
        assert_eq!(c.stats(), (2, 2));
    }

    #[test]
    fn capacity_eviction() {
        // Touch 2x the capacity in distinct lines, then re-touch the first:
        // it must have been evicted.
        let cfg = CacheConfig {
            capacity: 1 << 10,
            ways: 2,
            line: 64,
        };
        let mut c = SetAssocCache::new(cfg);
        let lines = (cfg.capacity / u64::from(cfg.line)) * 2;
        for i in 0..lines {
            c.access(i * 64);
        }
        assert!(!c.access(0), "line 0 must have been evicted");
    }

    #[test]
    fn lru_order_within_set() {
        // 2-way, 1 set: A B A C -> B evicted, A kept.
        let cfg = CacheConfig {
            capacity: 128,
            ways: 2,
            line: 64,
        };
        let mut c = SetAssocCache::new(cfg);
        assert_eq!(cfg.sets(), 1);
        c.access(0); // A miss
        c.access(64); // B miss
        assert!(c.access(0)); // A hit, now MRU
        c.access(128); // C miss, evicts B
        assert!(c.access(0)); // A still resident
        assert!(!c.access(64)); // B gone
    }

    #[test]
    fn hierarchy_latencies_escalate() {
        let mut h = CacheHierarchy::default();
        let cold = h.access(0);
        assert_eq!(cold, h.mem_lat);
        let warm = h.access(0);
        assert_eq!(warm, h.l1_lat);
    }

    #[test]
    fn l1_miss_can_hit_l2() {
        let mut h = CacheHierarchy::default();
        // Fill L1 well past capacity with a strided walk, then revisit the
        // first line: it should be an L2 (or L3) hit, not memory.
        for i in 0..2048u64 {
            h.access(i * 64);
        }
        let lat = h.access(0);
        assert!(lat < h.mem_lat, "revisit latency {lat} should beat DRAM");
        assert!(lat > h.l1_lat, "revisit should not be an L1 hit");
    }

    #[test]
    fn reset_clears_contents() {
        let mut h = CacheHierarchy::default();
        h.access(0);
        h.reset();
        assert_eq!(h.access(0), h.mem_lat);
    }
}
