//! The device abstraction the DySel runtime drives.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use dysel_kernel::{Args, Kernel, UnitRange, VariantMeta};
use dysel_obs::EventSink;

use crate::fault::FaultPlan;
use crate::Cycles;

/// Which family of device model is behind the trait object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Multicore CPU model (cache hierarchy + SIMD).
    Cpu,
    /// Throughput GPU model (SMs, warps, coalescing).
    Gpu,
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DeviceKind::Cpu => "cpu",
            DeviceKind::Gpu => "gpu",
        })
    }
}

/// Identifier of an in-order command stream (CUDA stream / task group).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct StreamId(pub u32);

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One kernel launch handed to a device.
pub struct LaunchSpec<'a> {
    /// The kernel implementation to run.
    pub kernel: &'a dyn Kernel,
    /// Its registration metadata (group size, placements, IR, wa factor).
    pub meta: &'a VariantMeta,
    /// The workload units this launch covers; the device splits them into
    /// work-groups of `meta.wa_factor` units each.
    pub units: UnitRange,
    /// Kernel arguments (mutated in place by functional execution).
    pub args: &'a mut Args,
    /// Stream to enqueue into (in-order within a stream).
    pub stream: StreamId,
    /// Host issue time: execution starts no earlier than this.
    pub not_before: Cycles,
    /// Whether to wrap the launch with measurement instrumentation
    /// (in-kernel cycle counters on the GPU, timer calls on the CPU).
    pub measured: bool,
    /// Cooperative launch budget in priced cycles. When set, the device
    /// checks an accumulated-cost watermark at every work-group boundary
    /// and preempts the launch ([`LaunchOutcome::Preempted`]) the moment
    /// committing the next group would exceed the budget; a preempted
    /// launch spends strictly `<= budget` cycles. `None` (the default)
    /// runs to completion.
    pub budget: Option<Cycles>,
}

impl fmt::Debug for LaunchSpec<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LaunchSpec")
            .field("variant", &self.meta.name)
            .field("units", &self.units)
            .field("stream", &self.stream)
            .field("not_before", &self.not_before)
            .field("measured", &self.measured)
            .field("budget", &self.budget)
            .finish()
    }
}

/// What a completed (virtually scheduled) launch reported back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchRecord {
    /// Time the first work-group started executing.
    pub start: Cycles,
    /// Time the last work-group finished.
    pub end: Cycles,
    /// Number of work-groups executed.
    pub groups: u64,
    /// Total execution-unit busy time consumed by the launch's groups
    /// (excludes queueing behind other launches).
    pub busy: Cycles,
    /// Measured cost, present iff the launch was measured: the
    /// throughput-normalized busy time (per-group in-kernel clock deltas
    /// summed on the host, Fig. 7), perturbed by the device noise model.
    /// Safe point analysis gives every profiling launch the same unit
    /// count, so these compare directly even when work-assignment factors
    /// (and therefore group counts and queueing) differ.
    pub measured: Option<Cycles>,
}

impl LaunchRecord {
    /// True completion span of the launch.
    pub fn span(&self) -> Cycles {
        self.end.saturating_sub(self.start)
    }
}

/// Why a launch failed without executing any work-group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchFailure {
    /// Virtual time at which the host observes the failure.
    pub at: Cycles,
    /// Whether a retry may succeed. Injected [`crate::FaultKind::LaunchError`]
    /// faults are transient: the retry consults the plan afresh.
    pub transient: bool,
}

/// How far a cooperatively preempted launch got before its budget ran out.
///
/// A preempted launch is discarded wholesale: its target buffers are
/// untouched (partial writes are thrown away with the snapshot they were
/// made against) and its stream did not advance. Only the execution units
/// that ran the committed groups were occupied — that is the bounded cost
/// the budget buys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchPreemption {
    /// Virtual time at which the host observes the preemption (the end of
    /// the last committed work-group, or the launch gate when the very
    /// first group already blew the budget).
    pub at: Cycles,
    /// Priced cycles spent on committed groups. Strictly `<= budget`: the
    /// watermark is checked *before* each group commits.
    pub cycles_spent: Cycles,
    /// Work-groups that executed and were priced before preemption. Always
    /// less than the launch's total group count.
    pub groups_done: u64,
}

/// Result of a launch: a virtual schedule, a failure report, or a
/// cooperative preemption.
///
/// A failed launch executed nothing — its target buffers are untouched,
/// its stream did not advance, and no execution unit was occupied. A
/// preempted launch ([`LaunchPreemption`]) stopped at its cycle budget;
/// its partial writes were discarded and its stream did not advance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a launch may have failed; check the outcome"]
pub enum LaunchOutcome {
    /// The launch ran; here is its virtual schedule.
    Done(LaunchRecord),
    /// The launch failed before executing.
    Failed(LaunchFailure),
    /// The launch blew its cycle budget and was cooperatively preempted.
    Preempted(LaunchPreemption),
}

impl LaunchOutcome {
    /// The record, if the launch completed.
    pub fn done(self) -> Option<LaunchRecord> {
        match self {
            LaunchOutcome::Done(r) => Some(r),
            LaunchOutcome::Failed(_) | LaunchOutcome::Preempted(_) => None,
        }
    }

    /// True when the launch failed.
    pub fn is_failed(&self) -> bool {
        matches!(self, LaunchOutcome::Failed(_))
    }

    /// The preemption report, if the launch blew its budget.
    pub fn preempted(self) -> Option<LaunchPreemption> {
        match self {
            LaunchOutcome::Preempted(p) => Some(p),
            LaunchOutcome::Done(_) | LaunchOutcome::Failed(_) => None,
        }
    }

    /// The record of a completed launch.
    ///
    /// # Panics
    ///
    /// Panics if the launch failed or was preempted. For callers that do
    /// not inject faults or budgets (or have already filtered failures)
    /// this is the infallible path.
    pub fn unwrap_done(self) -> LaunchRecord {
        match self {
            LaunchOutcome::Done(r) => r,
            LaunchOutcome::Failed(f) => panic!("launch failed at {}", f.at),
            LaunchOutcome::Preempted(p) => panic!("launch preempted at {}", p.at),
        }
    }
}

/// One entry of a batched launch (see [`Device::launch_batch`]).
///
/// Unlike [`LaunchSpec`], the argument set is named by an *index* into the
/// batch's target slice rather than borrowed directly — several entries may
/// share one target (the K fully-productive profiling launches all mutate
/// the real workload buffers), which a slice of `&mut Args` per entry could
/// not express.
pub struct BatchEntry<'a> {
    /// The kernel implementation to run.
    pub kernel: &'a dyn Kernel,
    /// Its registration metadata (group size, placements, IR, wa factor).
    pub meta: &'a VariantMeta,
    /// The workload units this launch covers.
    pub units: UnitRange,
    /// Index into the batch's `targets` slice naming the argument set this
    /// entry executes against.
    pub target: usize,
    /// Stream to enqueue into (in-order within a stream).
    pub stream: StreamId,
    /// Host issue time: execution starts no earlier than this.
    pub not_before: Cycles,
    /// Whether to wrap the launch with measurement instrumentation.
    pub measured: bool,
    /// Explicit cooperative cycle budget for this entry (see
    /// [`LaunchSpec::budget`]). Takes precedence over any installed
    /// [`BudgetPolicy`]-derived budget.
    pub budget: Option<Cycles>,
}

impl fmt::Debug for BatchEntry<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BatchEntry")
            .field("variant", &self.meta.name)
            .field("units", &self.units)
            .field("target", &self.target)
            .field("stream", &self.stream)
            .field("not_before", &self.not_before)
            .field("measured", &self.measured)
            .field("budget", &self.budget)
            .finish()
    }
}

/// Device-level policy deriving default launch budgets for *measured*
/// (profiling) launches from the best measurement seen so far within a
/// batch: once some measured entry completes at cost `best`, every later
/// measured entry in the same batch runs under a budget of
/// `deadline_factor x best` (updated as better measurements arrive). The
/// first measured entry has no baseline and runs unbudgeted; unmeasured
/// launches are never budgeted by policy. Budgets are defined in priced
/// cycles, so the policy's decisions — like everything else in the virtual
/// timeline — are independent of the worker-thread count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetPolicy {
    /// Multiple of the best-so-far measurement a profiling launch may
    /// spend before it is preempted. Values below 1.0 are clamped to 1.0.
    pub deadline_factor: f64,
}

impl BudgetPolicy {
    /// A policy preempting measured launches at `deadline_factor x best`.
    pub fn new(deadline_factor: f64) -> Self {
        BudgetPolicy { deadline_factor }
    }

    /// The budget this policy derives from a best-so-far measurement.
    pub fn budget_for(&self, best: Cycles) -> Cycles {
        Cycles::from_f64(best.as_f64() * self.deadline_factor.max(1.0))
    }
}

/// A deterministic device timing model that functionally executes kernels.
///
/// Launches are scheduled in virtual time: `launch` runs the kernel's
/// work-groups immediately (producing real output in `args`) and returns
/// when, in virtual device time, the work would have started and finished.
/// Streams are in-order; distinct streams share execution units.
///
/// Devices are `Send`: the `LaunchService` moves each lane's device onto
/// its shard worker thread. (They are deliberately not `Sync` — a device
/// is always driven by exactly one runtime at a time.)
pub trait Device: Send {
    /// Device family.
    fn kind(&self) -> DeviceKind;

    /// Short human-readable name (e.g. `"cpu/i7-3820-like"`).
    fn name(&self) -> String;

    /// Number of execution units (cores / SMs). Safe point analysis scales
    /// profiling workloads to a multiple of this (§3.4).
    fn units(&self) -> u32;

    /// Fixed cost the host pays per kernel launch.
    fn launch_overhead(&self) -> Cycles;

    /// Cost of one host-side stream status query (`cudaStreamQuery` on the
    /// GPU; nearly free on the CPU). Drives the §5.1 async discussion.
    fn query_latency(&self) -> Cycles;

    /// Executes a launch, returning its virtual schedule — or a failure,
    /// if an installed [`FaultPlan`] injects a launch error. Without a
    /// plan the outcome is always [`LaunchOutcome::Done`].
    fn launch(&mut self, spec: LaunchSpec<'_>) -> LaunchOutcome;

    /// Executes a batch of launches as if issued back-to-back in entry
    /// order, returning one outcome per entry (same order).
    ///
    /// Semantically identical to looping [`Device::launch`] — stream
    /// gating, unit scheduling and the noise sequence all advance exactly
    /// as in the serial issue order — but device models may overlap the
    /// *functional* execution of all entries across worker threads. The
    /// runtime hands its K independent micro-profiling launches to this
    /// method so they fan out together.
    ///
    /// Every `entry.target` must index into `targets`.
    fn launch_batch(
        &mut self,
        entries: &[BatchEntry<'_>],
        targets: &mut [&mut Args],
    ) -> Vec<LaunchOutcome> {
        entries
            .iter()
            .map(|e| {
                self.launch(LaunchSpec {
                    kernel: e.kernel,
                    meta: e.meta,
                    units: e.units,
                    args: &mut *targets[e.target],
                    stream: e.stream,
                    not_before: e.not_before,
                    measured: e.measured,
                    budget: e.budget,
                })
            })
            .collect()
    }

    /// Installs (or removes, with `None`) a fault-injection plan. The
    /// default device injects nothing and discards the plan.
    fn set_fault_plan(&mut self, _plan: Option<FaultPlan>) {}

    /// Installs (or removes, with `None`) a launch-budget policy. The
    /// default device never preempts and discards the policy.
    fn set_budget_policy(&mut self, _policy: Option<BudgetPolicy>) {}

    /// The installed budget policy. `None` when budgets are off (the
    /// default).
    fn budget_policy(&self) -> Option<BudgetPolicy> {
        None
    }

    /// The installed fault plan, with its live launch counters and
    /// injection log — the ground truth tests compare report counters
    /// against. `None` when fault injection is off (the default).
    fn fault_plan(&self) -> Option<&FaultPlan> {
        None
    }

    /// Installs (or removes, with `None`) an observability sink. Observed
    /// devices emit enqueue / launch-error / preempt events into it from
    /// their serial pricing pass; the default device discards the sink
    /// and emits nothing.
    fn set_observer(&mut self, _obs: Option<Arc<EventSink>>) {}

    /// The installed observability sink. `None` when observation is off
    /// (the default).
    fn observer(&self) -> Option<&Arc<EventSink>> {
        None
    }

    /// Completion time of all work enqueued so far in `stream`
    /// (`Cycles::ZERO` if the stream never ran anything).
    fn stream_end(&self, stream: StreamId) -> Cycles;

    /// Earliest time at which some execution unit is idle.
    fn earliest_unit_free(&self) -> Cycles;

    /// Time at which the whole device drains.
    fn busy_until(&self) -> Cycles;

    /// Resets virtual time, stream state, caches, the noise generator and
    /// any installed fault plan's launch counters (the plan's rules stay:
    /// a reset device replays the same fault sequence).
    fn reset(&mut self);
}

/// Book-keeping for in-order streams, shared by the device models.
#[derive(Debug, Clone, Default)]
pub(crate) struct StreamTable {
    end: HashMap<StreamId, Cycles>,
}

impl StreamTable {
    pub(crate) fn end_of(&self, s: StreamId) -> Cycles {
        self.end.get(&s).copied().unwrap_or(Cycles::ZERO)
    }

    /// Earliest permissible start for a launch in `s` issued at `host_t`.
    pub(crate) fn gate(&self, s: StreamId, host_t: Cycles) -> Cycles {
        self.end_of(s).max(host_t)
    }

    pub(crate) fn record(&mut self, s: StreamId, end: Cycles) {
        let e = self.end.entry(s).or_insert(Cycles::ZERO);
        *e = (*e).max(end);
    }

    pub(crate) fn reset(&mut self) {
        self.end.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_table_orders_work() {
        let mut t = StreamTable::default();
        assert_eq!(t.end_of(StreamId(0)), Cycles::ZERO);
        t.record(StreamId(0), Cycles(100));
        assert_eq!(t.gate(StreamId(0), Cycles(40)), Cycles(100));
        assert_eq!(t.gate(StreamId(0), Cycles(140)), Cycles(140));
        assert_eq!(t.gate(StreamId(1), Cycles(40)), Cycles(40));
        t.reset();
        assert_eq!(t.end_of(StreamId(0)), Cycles::ZERO);
    }

    #[test]
    fn record_keeps_the_max() {
        let mut t = StreamTable::default();
        t.record(StreamId(2), Cycles(50));
        t.record(StreamId(2), Cycles(30));
        assert_eq!(t.end_of(StreamId(2)), Cycles(50));
    }
}
