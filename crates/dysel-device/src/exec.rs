//! The parallel work-pool executor and the two-phase launch engine.
//!
//! The device models price every work-group against *stateful* per-unit
//! cache models and a greedy earliest-free-unit scheduler, so the virtual
//! timeline is an inherently serial computation. Functional execution of
//! the work-groups, however, is pure: a group's outputs and its cost trace
//! depend only on the pre-launch buffer contents and the group's unit
//! range. The engine exploits exactly that split:
//!
//! 1. **Functional phase (parallel).** A launch's groups are partitioned
//!    into a fixed number of contiguous *spans* (independent of the worker
//!    count). Each span job clones the pre-launch argument snapshot
//!    (copy-on-write, so inputs are shared), executes its groups, and
//!    records each group's cost trace with a
//!    [`dysel_kernel::RecordingSink`]. Jobs run on a std-only work pool —
//!    `std::thread` workers pulling span indexes from a shared queue and
//!    returning results over an `mpsc` channel.
//! 2. **Reduction + pricing phase (serial, canonical order).** Span results
//!    are reduced in span order: output deltas are merged into the real
//!    argument buffers, then every recorded trace is replayed — in the
//!    launch's canonical group order — through the device's cost sink,
//!    per-unit cache state, scheduler and noise model.
//!
//! Because phase 2 consumes span results in canonical order regardless of
//! which worker produced them when, the same seed yields bit-identical
//! outputs, measurements and schedules at any thread count — the
//! determinism contract the test suite pins at 1, 2 and 8 workers.
//!
//! ## Output-merge strategies
//!
//! Workers execute against a snapshot, so every group observes the
//! *pre-launch* buffer state (the same guarantee a real accelerator gives
//! concurrent work-groups). Worker writes are folded back by comparing the
//! executed snapshot against the pristine one, per declared output
//! argument:
//!
//! * disjoint outputs (`ir.output_disjoint`, no atomics): changed elements
//!   overwrite the target in span order — bit-identical to serial
//!   execution, since each element is written by at most one group;
//! * overlapping/atomic outputs: the element-wise *delta* is added with
//!   wrapping arithmetic, which composes exactly for the commutative
//!   accumulations (e.g. histogram bin counts) such kernels perform.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;

use dysel_kernel::{
    span_bounds, Args, GroupCtx, Kernel, RecordedTrace, RecordingSink, TraceView, UnitRange,
    VariantMeta,
};
use dysel_obs::{Event, EventSink, Stage};

use crate::device::{
    BatchEntry, BudgetPolicy, LaunchFailure, LaunchOutcome, LaunchPreemption, LaunchRecord,
    StreamTable,
};
use crate::fault::{FaultKind, FaultPlan};
use crate::noise::NoiseModel;
use crate::sched::UnitPool;
use crate::Cycles;

/// Spans a launch is split into for the functional phase. Fixed (not a
/// function of the worker count) so that span boundaries — and therefore
/// merge order and recorded traces — are identical at every thread count.
const SPANS_PER_LAUNCH: usize = 16;

/// Upper bound on recycled span traces kept by an [`Executor`]'s arena.
/// One launch produces at most [`SPANS_PER_LAUNCH`] traces per entry, so a
/// small multiple keeps the steady state allocation-free without letting a
/// one-off giant batch pin memory forever.
const MAX_POOLED_TRACES: usize = 64;

/// A std-only work pool: `threads` workers executing indexed jobs pulled
/// from a shared queue, with results reduced in index order.
///
/// `threads == 0` resolves to [`std::thread::available_parallelism`];
/// `threads == 1` runs jobs inline on the caller thread (no spawning).
///
/// The executor also owns the launch engine's *trace arena*: recorded span
/// traces are returned here after pricing and handed back to the next
/// launch's span jobs, so the profile→price→discard cycle stops hitting
/// the allocator once the pool is warm.
#[derive(Debug, Clone)]
pub struct Executor {
    threads: usize,
    arena: Arc<Mutex<Vec<RecordedTrace>>>,
}

impl Executor {
    /// Creates an executor with the given worker count (0 = auto).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        };
        Executor {
            threads,
            arena: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Pops a recycled trace from the arena (empty if none is available).
    fn take_trace(&self) -> RecordedTrace {
        self.arena
            .lock()
            .map(|mut pool| pool.pop())
            .unwrap_or_default()
            .unwrap_or_default()
    }

    /// Returns a trace's buffers to the arena for reuse.
    fn recycle_trace(&self, mut trace: RecordedTrace) {
        if let Ok(mut pool) = self.arena.lock() {
            if pool.len() < MAX_POOLED_TRACES {
                trace.clear();
                pool.push(trace);
            }
        }
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs jobs `0..n` across the pool and returns their results in job
    /// order. Job scheduling is dynamic (workers pull the next index off a
    /// shared counter) but the returned order — and thus everything
    /// downstream — is canonical.
    pub fn run_ordered<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.threads <= 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let workers = self.threads.min(n);
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let f = &f;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    if tx.send((i, f(i))).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for (i, v) in rx {
                slots[i] = Some(v);
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("every job index was executed"))
            .collect()
    }
}

impl Default for Executor {
    fn default() -> Self {
        Executor::new(0)
    }
}

/// One span's worth of functional execution: the mutated snapshot and the
/// span's recorded trace, with one closed group per executed work-group
/// (walk them in order with [`RecordedTrace::groups`]).
pub(crate) struct SpanRun {
    pub(crate) args: Args,
    pub(crate) trace: RecordedTrace,
}

/// One launch to execute functionally.
pub(crate) struct FunctionalItem<'a> {
    pub(crate) kernel: &'a dyn Kernel,
    pub(crate) meta: &'a VariantMeta,
    pub(crate) units: UnitRange,
    /// Pre-launch snapshot of the argument set this launch targets.
    pub(crate) pristine: &'a Args,
}

/// Executes every item's work-groups across the pool (phase 1). Spans of
/// *all* items are fanned out together, so a batch of K profiling launches
/// saturates the workers even when each launch is small. Results come back
/// grouped per item, spans in order.
pub(crate) fn run_functional(exec: &Executor, items: &[FunctionalItem<'_>]) -> Vec<Vec<SpanRun>> {
    // Per item: the group list and its partition into spans.
    let groups: Vec<Vec<(u64, UnitRange)>> = items
        .iter()
        .map(|it| it.units.groups(u64::from(it.meta.wa_factor)).collect())
        .collect();
    // Global job list: (item, group range) pairs, item-major.
    let mut jobs: Vec<(usize, usize, usize)> = Vec::new();
    for (i, g) in groups.iter().enumerate() {
        for (lo, hi) in span_bounds(g.len(), SPANS_PER_LAUNCH) {
            jobs.push((i, lo, hi));
        }
    }
    let span_runs = exec.run_ordered(jobs.len(), |j| {
        let (i, lo, hi) = jobs[j];
        let item = &items[i];
        let mut args = item.pristine.clone();
        // One recycled trace records the whole span, group boundaries mark
        // the per-group slices for the serial pricing pass.
        let mut sink = RecordingSink::reusing(exec.take_trace());
        for &(g, gu) in &groups[i][lo..hi] {
            let mut ctx = GroupCtx::new(
                g,
                gu,
                item.meta.group_size,
                &args,
                &item.meta.placements,
                &mut sink,
            );
            item.kernel.run_group(&mut ctx, &mut args);
            drop(ctx);
            sink.end_group();
        }
        SpanRun {
            args,
            trace: sink.into_trace(),
        }
    });
    // Regroup the flat span list per item (jobs were built item-major).
    let mut out: Vec<Vec<SpanRun>> = items.iter().map(|_| Vec::new()).collect();
    for ((i, _, _), run) in jobs.iter().zip(span_runs) {
        out[*i].push(run);
    }
    out
}

/// The declared output arguments of `meta` that exist in `target`.
fn output_indices(meta: &VariantMeta, target: &Args) -> Vec<usize> {
    meta.ir
        .output_args
        .iter()
        .copied()
        .filter(|&i| i < target.len())
        .collect()
}

/// Folds a launch's span results back into the real target (phase 2a).
pub(crate) fn merge_spans(
    target: &mut Args,
    pristine: &Args,
    spans: &[SpanRun],
    meta: &VariantMeta,
) {
    let additive = meta.ir.has_global_atomics || !meta.ir.output_disjoint;
    let outs = output_indices(meta, target);
    for span in spans {
        target
            .merge_outputs(&span.args, pristine, &outs, additive)
            .expect("span snapshot has the target's arity");
    }
}

/// Device-specific trace pricing: one work-group's recorded trace against
/// the stateful cost model of execution unit `unit`.
pub(crate) trait PriceModel {
    /// The group's execution cost on `unit`.
    fn group_cost(&mut self, unit: usize, meta: &VariantMeta, trace: TraceView<'_>) -> Cycles;
}

/// How phase 2 will handle one batch entry.
enum EntryPlan {
    /// Functionally executed by the phase-1 fan-out; index into `runs`.
    Fanned(usize),
    /// Budget-eligible: executed lazily, group by group, inside phase 2 so
    /// a preemption really stops the functional execution.
    Inline,
    /// Injected `LaunchError`: never executes.
    Refused,
}

/// The full two-phase batch launch shared by the device models: parallel
/// functional execution of every entry, then serial in-order merge,
/// pricing, scheduling and measurement.
///
/// When a [`FaultPlan`] is installed, each entry consults it — in issue
/// order, so decisions are independent of the worker-thread count — before
/// anything runs. An injected `LaunchError` skips the entry entirely (no
/// functional execution, no noise draws, no stream or unit-pool advance);
/// `Hang` multiplies every priced group cost; `WrongOutput`/`Poison`
/// tamper with exactly the elements the launch wrote, after the merge.
/// The healthy path with no plan costs one `Option` check per batch.
///
/// ## Cooperative launch budgets
///
/// An entry runs under a cycle budget when it carries an explicit
/// [`BatchEntry::budget`], or when a [`BudgetPolicy`] is installed, the
/// entry is measured, and an earlier measured entry of this batch already
/// established a best-so-far baseline (`budget = deadline_factor x best`,
/// tightening as better measurements arrive). Budget-eligible entries skip
/// the phase-1 fan-out and execute *inline* during phase 2: each group is
/// run functionally against a private snapshot, priced, and committed only
/// if the accumulated spend stays within budget — the first group that
/// would overflow preempts the launch ([`LaunchOutcome::Preempted`])
/// before executing any further work, so `cycles_spent <= budget` holds
/// strictly and a `hang*64` variant costs at most the budget instead of
/// 64x the slice. A preempted entry discards its snapshot (target buffers
/// untouched) and does not advance its stream; the unit pool keeps only
/// the committed groups' occupancy. The inline path walks the same
/// [`span_bounds`] partition in the same canonical group order and draws
/// noise identically, so an entry that *completes* within budget is
/// bit-identical to the fanned path — and every budget decision is made in
/// priced virtual cycles, keeping outcomes independent of the worker
/// count.
#[allow(clippy::too_many_arguments)]
pub(crate) fn launch_batch_engine<M: PriceModel>(
    exec: &Executor,
    entries: &[BatchEntry<'_>],
    targets: &mut [&mut Args],
    streams: &mut StreamTable,
    pool: &mut UnitPool,
    exec_noise: &mut NoiseModel,
    meas_noise: &mut NoiseModel,
    launch_overhead: Cycles,
    model: &mut M,
    faults: Option<&mut FaultPlan>,
    budget_policy: Option<BudgetPolicy>,
    obs: Option<&EventSink>,
) -> Vec<LaunchOutcome> {
    // Fault decisions, one per entry in issue order (counters tick here).
    let decisions: Vec<Option<FaultKind>> = match faults {
        Some(plan) => entries.iter().map(|e| plan.decide(&e.meta.name)).collect(),
        None => vec![None; entries.len()],
    };

    // Phase 0: one pristine snapshot per distinct target (cheap: payloads
    // are shared copy-on-write until a worker writes).
    let pristine: Vec<Args> = targets.iter().map(|t| (**t).clone()).collect();

    // Phase 1: functional execution of every entry across the pool —
    // except refused entries (which never execute) and budget-eligible
    // ones (which must be able to stop mid-launch, so they run inline in
    // phase 2). Eligibility must be decidable before pricing, so any
    // measured entry is kept inline while a policy is installed, whether
    // or not a baseline ends up binding it.
    let mut plan_of: Vec<EntryPlan> = Vec::with_capacity(entries.len());
    let mut items: Vec<FunctionalItem<'_>> = Vec::with_capacity(entries.len());
    for (e, decision) in entries.iter().zip(&decisions) {
        if *decision == Some(FaultKind::LaunchError) {
            plan_of.push(EntryPlan::Refused);
        } else if e.budget.is_some() || (budget_policy.is_some() && e.measured) {
            plan_of.push(EntryPlan::Inline);
        } else {
            plan_of.push(EntryPlan::Fanned(items.len()));
            items.push(FunctionalItem {
                kernel: e.kernel,
                meta: e.meta,
                units: e.units,
                pristine: &pristine[e.target],
            });
        }
    }
    let runs = run_functional(exec, &items);

    // Phase 2: serial reduction in issue order — merge outputs, then
    // replay each group's trace through the cost model in canonical order.
    let mut best_measured: Option<Cycles> = None;
    let mut outcomes = Vec::with_capacity(entries.len());
    for (ei, e) in entries.iter().enumerate() {
        let slow = match decisions[ei] {
            Some(FaultKind::Hang(factor)) => factor.max(1),
            _ => 1,
        };
        let corrupt = match decisions[ei] {
            Some(kind @ (FaultKind::WrongOutput | FaultKind::Poison)) => {
                Some(kind == FaultKind::Poison)
            }
            _ => None,
        };
        let outcome = match plan_of[ei] {
            EntryPlan::Refused => {
                // Failed launch: nothing ran, nothing advances. The host
                // observes the failure once the stream would have started.
                let at = streams.gate(e.stream, e.not_before + launch_overhead);
                LaunchOutcome::Failed(LaunchFailure {
                    at,
                    transient: true,
                })
            }
            EntryPlan::Fanned(i) => {
                let spans = &runs[i];
                merge_spans(targets[e.target], &pristine[e.target], spans, e.meta);
                if let Some(poison) = corrupt {
                    let outs = output_indices(e.meta, targets[e.target]);
                    for span in spans {
                        targets[e.target]
                            .corrupt_changed(&span.args, &pristine[e.target], &outs, poison)
                            .expect("span snapshot has the target's arity");
                    }
                }
                let gate = streams.gate(e.stream, e.not_before + launch_overhead);
                let mut first_start = Cycles::MAX;
                let mut last_end = Cycles::ZERO;
                let mut busy = Cycles::ZERO;
                let mut groups = 0u64;
                for span in spans {
                    for view in span.trace.groups() {
                        let unit = pool.earliest_unit();
                        let cost = exec_noise.perturb(model.group_cost(unit, e.meta, view)) * slow;
                        let p = pool.assign_to(unit, cost, gate);
                        first_start = first_start.min(p.start);
                        last_end = last_end.max(p.end);
                        busy += cost;
                        groups += 1;
                    }
                }
                if groups == 0 {
                    first_start = gate;
                    last_end = gate;
                }
                streams.record(e.stream, last_end);
                let measured = e.measured.then(|| meas_noise.perturb(busy));
                LaunchOutcome::Done(LaunchRecord {
                    start: first_start,
                    end: last_end,
                    groups,
                    busy,
                    measured,
                })
            }
            EntryPlan::Inline => {
                let budget = e.budget.or_else(|| match (budget_policy, best_measured) {
                    (Some(p), Some(best)) if e.measured => Some(p.budget_for(best)),
                    _ => None,
                });
                run_budgeted_entry(
                    exec,
                    e,
                    targets,
                    &pristine,
                    streams,
                    pool,
                    exec_noise,
                    meas_noise,
                    launch_overhead,
                    model,
                    slow,
                    corrupt,
                    budget,
                )
            }
        };
        if let LaunchOutcome::Done(LaunchRecord {
            measured: Some(m), ..
        }) = outcome
        {
            best_measured = Some(best_measured.map_or(m, |b| b.min(m)));
        }
        // Emission happens here, in the serial pricing pass, so device
        // events carry canonical sequence numbers at any worker count.
        if let Some(sink) = obs {
            emit_outcome(sink, e, &outcome);
        }
        outcomes.push(outcome);
    }
    // Priced traces go back to the arena: the next launch's span jobs
    // record into these buffers instead of allocating fresh ones.
    for item_runs in runs {
        for span in item_runs {
            exec.recycle_trace(span.trace);
        }
    }
    outcomes
}

/// Emits the device-level event for one priced launch outcome.
fn emit_outcome(sink: &EventSink, e: &BatchEntry<'_>, outcome: &LaunchOutcome) {
    let base = |stage: Stage| {
        Event::new(stage)
            .variant(&e.meta.name)
            .stream(e.stream.0)
            .units(e.units.start, e.units.end)
    };
    match outcome {
        LaunchOutcome::Done(rec) => {
            let mut detail = format!("groups={} busy={}", rec.groups, rec.busy.0);
            if let Some(m) = rec.measured {
                detail.push_str(&format!(" measured={}", m.0));
            }
            sink.emit(
                base(Stage::Enqueue)
                    .span(rec.start.0, rec.end.0)
                    .detail(detail),
            );
        }
        LaunchOutcome::Failed(f) => {
            let detail = if f.transient {
                "transient launch failure"
            } else {
                "permanent launch failure"
            };
            sink.emit(base(Stage::LaunchError).at(f.at.0).detail(detail));
        }
        LaunchOutcome::Preempted(p) => {
            sink.emit(base(Stage::Preempt).at(p.at.0).detail(format!(
                "groups_done={} cycles_spent={}",
                p.groups_done, p.cycles_spent.0
            )));
        }
    }
}

/// Executes one budget-eligible entry inline (see the budget section of
/// [`launch_batch_engine`]): groups run functionally against a private
/// snapshot in the canonical [`span_bounds`] order, each priced and then
/// committed only if the accumulated spend stays within `budget`.
#[allow(clippy::too_many_arguments)]
fn run_budgeted_entry<M: PriceModel>(
    exec: &Executor,
    e: &BatchEntry<'_>,
    targets: &mut [&mut Args],
    pristine: &[Args],
    streams: &mut StreamTable,
    pool: &mut UnitPool,
    exec_noise: &mut NoiseModel,
    meas_noise: &mut NoiseModel,
    launch_overhead: Cycles,
    model: &mut M,
    slow: u64,
    corrupt: Option<bool>,
    budget: Option<Cycles>,
) -> LaunchOutcome {
    let groups: Vec<(u64, UnitRange)> = e.units.groups(u64::from(e.meta.wa_factor)).collect();
    let gate = streams.gate(e.stream, e.not_before + launch_overhead);
    let mut work = pristine[e.target].clone();
    let mut first_start = Cycles::MAX;
    let mut last_end = Cycles::ZERO;
    let mut busy = Cycles::ZERO;
    let mut groups_done = 0u64;
    let mut preempted = false;
    // One recycled trace, cleared per group: record → price → reuse.
    let mut trace = exec.take_trace();
    'spans: for (lo, hi) in span_bounds(groups.len(), SPANS_PER_LAUNCH) {
        for &(g, gu) in &groups[lo..hi] {
            let mut sink = RecordingSink::reusing(std::mem::take(&mut trace));
            let mut ctx = GroupCtx::new(
                g,
                gu,
                e.meta.group_size,
                &work,
                &e.meta.placements,
                &mut sink,
            );
            e.kernel.run_group(&mut ctx, &mut work);
            drop(ctx);
            trace = sink.into_trace();
            let unit = pool.earliest_unit();
            let cost = exec_noise.perturb(model.group_cost(unit, e.meta, trace.view())) * slow;
            if let Some(b) = budget {
                if busy + cost > b {
                    // Committing this group would blow the budget: preempt
                    // before it occupies a unit or writes become visible.
                    preempted = true;
                    break 'spans;
                }
            }
            let p = pool.assign_to(unit, cost, gate);
            first_start = first_start.min(p.start);
            last_end = last_end.max(p.end);
            busy += cost;
            groups_done += 1;
        }
    }
    exec.recycle_trace(trace);
    if preempted {
        // The snapshot (and with it every partial write) is discarded; the
        // stream does not advance, exactly like a failed launch.
        return LaunchOutcome::Preempted(LaunchPreemption {
            at: if groups_done == 0 { gate } else { last_end },
            cycles_spent: busy,
            groups_done,
        });
    }
    let outs = output_indices(e.meta, targets[e.target]);
    let additive = e.meta.ir.has_global_atomics || !e.meta.ir.output_disjoint;
    targets[e.target]
        .merge_outputs(&work, &pristine[e.target], &outs, additive)
        .expect("work snapshot has the target's arity");
    if let Some(poison) = corrupt {
        targets[e.target]
            .corrupt_changed(&work, &pristine[e.target], &outs, poison)
            .expect("work snapshot has the target's arity");
    }
    if groups_done == 0 {
        first_start = gate;
        last_end = gate;
    }
    streams.record(e.stream, last_end);
    let measured = e.measured.then(|| meas_noise.perturb(busy));
    LaunchOutcome::Done(LaunchRecord {
        start: first_start,
        end: last_end,
        groups: groups_done,
        busy,
        measured,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_ordered_returns_results_in_job_order() {
        for threads in [1, 2, 8] {
            let exec = Executor::new(threads);
            let got = exec.run_ordered(37, |i| i * i);
            assert_eq!(got, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        assert!(Executor::new(0).threads() >= 1);
    }

    #[test]
    fn empty_job_list_is_fine() {
        let exec = Executor::new(4);
        let got: Vec<u32> = exec.run_ordered(0, |_| unreachable!());
        assert!(got.is_empty());
    }

    #[test]
    fn pool_handles_more_jobs_than_workers() {
        let exec = Executor::new(3);
        let got = exec.run_ordered(100, |i| i + 1);
        assert_eq!(got.len(), 100);
        assert_eq!(got[99], 100);
    }
}
