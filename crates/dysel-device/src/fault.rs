//! Deterministic fault injection for the device models.
//!
//! A [`FaultPlan`] is a seeded, serializable list of [`FaultRule`]s the
//! two-phase launch engine consults once per launch, keyed by
//! `(variant name, per-variant launch index)`. Four fault classes cover
//! the failure modes a production selector must survive:
//!
//! * [`FaultKind::LaunchError`] — the launch fails before any work-group
//!   runs (transient: a retry may succeed);
//! * [`FaultKind::WrongOutput`] — the launch completes but every element
//!   it wrote is silently tampered;
//! * [`FaultKind::Poison`] — like `WrongOutput`, but the written elements
//!   become NaN / sentinel values;
//! * [`FaultKind::Hang`] — the launch completes functionally but each
//!   work-group is priced at ×N cycles, blowing any profiling deadline.
//!
//! Decisions are a pure function of `(plan seed, variant name, launch
//! index, rule position)` — independent of worker-thread count and host
//! scheduling — so faulted runs replay bit-identically, preserving the
//! determinism contract. [`FaultPlan::reset`] rewinds the launch counters
//! (keeping the rules), which is what `Device::reset` calls so a reset
//! device replays the same faults.
//!
//! Plans have a compact text form for the `--fault-plan` CLI flag:
//!
//! ```text
//! seed=7;scalar=error;vector@2+1=wrong;texture=hang*64;padded@0+4=poison?0.5
//! ```
//!
//! i.e. `;`-separated rules `NAME[@FROM[+COUNT]]=KIND[*FACTOR][?PROB]`,
//! with an optional leading `seed=N`. `FROM` is the first per-variant
//! launch index the rule covers, `COUNT` the window length (unbounded if
//! omitted), `*FACTOR` the hang multiplier and `?PROB` an independent
//! firing probability.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// Hang multiplier used when a `hang` rule does not name one.
pub const DEFAULT_HANG_FACTOR: u64 = 32;

/// The class of fault a rule injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The launch fails outright before executing; retryable.
    LaunchError,
    /// Silent corruption: every element the launch wrote is bit-tampered.
    WrongOutput,
    /// NaN / sentinel values written over every element the launch wrote.
    Poison,
    /// Every work-group's priced cost is multiplied by the factor.
    Hang(u64),
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::LaunchError => f.write_str("error"),
            FaultKind::WrongOutput => f.write_str("wrong"),
            FaultKind::Poison => f.write_str("poison"),
            FaultKind::Hang(n) => write!(f, "hang*{n}"),
        }
    }
}

/// One injection rule: which variant, which launch-index window, what
/// fault, and with what probability.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// Variant name the rule applies to (exact match).
    pub variant: String,
    /// First per-variant launch index the rule covers.
    pub from: u64,
    /// Number of launch indexes covered (`u64::MAX` = unbounded).
    pub count: u64,
    /// The fault to inject.
    pub kind: FaultKind,
    /// Independent firing probability in `[0, 1]`; `1.0` fires always.
    pub probability: f64,
}

impl FaultRule {
    /// A rule covering every launch of `variant`, firing always.
    pub fn new(variant: impl Into<String>, kind: FaultKind) -> FaultRule {
        FaultRule {
            variant: variant.into(),
            from: 0,
            count: u64::MAX,
            kind,
            probability: 1.0,
        }
    }

    /// Restricts the rule to launch indexes `[from, from + count)`.
    #[must_use]
    pub fn window(mut self, from: u64, count: u64) -> FaultRule {
        self.from = from;
        self.count = count;
        self
    }

    /// Makes the rule fire with probability `p` (clamped to `[0, 1]`).
    #[must_use]
    pub fn with_probability(mut self, p: f64) -> FaultRule {
        self.probability = p.clamp(0.0, 1.0);
        self
    }

    fn covers(&self, index: u64) -> bool {
        index >= self.from && index.wrapping_sub(self.from) < self.count
    }
}

impl fmt::Display for FaultRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.variant)?;
        if self.count != u64::MAX {
            write!(f, "@{}+{}", self.from, self.count)?;
        } else if self.from != 0 {
            write!(f, "@{}", self.from)?;
        }
        write!(f, "={}", self.kind)?;
        if self.probability < 1.0 {
            write!(f, "?{}", self.probability)?;
        }
        Ok(())
    }
}

/// One fault the plan actually injected, for post-run accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// Variant the fault hit.
    pub variant: String,
    /// Per-variant launch index of the hit.
    pub launch_index: u64,
    /// What was injected.
    pub kind: FaultKind,
}

/// A seeded, deterministic fault-injection plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
    counters: HashMap<String, u64>,
    injected: Vec<InjectedFault>,
}

impl FaultPlan {
    /// An empty plan with the given probability seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Adds a rule (builder form).
    #[must_use]
    pub fn with(mut self, rule: FaultRule) -> FaultPlan {
        self.rules.push(rule);
        self
    }

    /// Adds a rule.
    pub fn push(&mut self, rule: FaultRule) {
        self.rules.push(rule);
    }

    /// The plan's probability seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The rules, in evaluation order.
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }

    /// True when the plan holds no rules (it then never injects).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Decides the fault (if any) for the next launch of `variant`,
    /// advancing its per-variant launch counter. The first covering rule
    /// whose probability draw fires wins; a rule that covers the index but
    /// draws "no" falls through to the next rule.
    pub fn decide(&mut self, variant: &str) -> Option<FaultKind> {
        let counter = self.counters.entry(variant.to_owned()).or_insert(0);
        let index = *counter;
        *counter += 1;
        for (r, rule) in self.rules.iter().enumerate() {
            if rule.variant != variant || !rule.covers(index) {
                continue;
            }
            if rule.probability < 1.0 && draw(self.seed, variant, index, r) >= rule.probability {
                continue;
            }
            self.injected.push(InjectedFault {
                variant: variant.to_owned(),
                launch_index: index,
                kind: rule.kind,
            });
            return Some(rule.kind);
        }
        None
    }

    /// Number of launches of `variant` the plan has seen so far.
    pub fn launches_of(&self, variant: &str) -> u64 {
        self.counters.get(variant).copied().unwrap_or(0)
    }

    /// Every fault injected so far, in injection order.
    pub fn injected(&self) -> &[InjectedFault] {
        &self.injected
    }

    /// How many faults of exactly `kind` were injected so far.
    pub fn injected_count(&self, kind: FaultKind) -> u64 {
        self.injected.iter().filter(|i| i.kind == kind).count() as u64
    }

    /// Total faults injected so far.
    pub fn total_injected(&self) -> u64 {
        self.injected.len() as u64
    }

    /// Rewinds the launch counters and the injection log, keeping the
    /// rules — a reset device replays the exact same fault sequence.
    pub fn reset(&mut self) {
        self.counters.clear();
        self.injected.clear();
    }
}

/// A stateless probability draw: pure in `(seed, variant, index, rule)`,
/// so it is independent of thread count and evaluation order.
fn draw(seed: u64, variant: &str, index: u64, rule: usize) -> f64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for b in variant.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= (rule as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        for rule in &self.rules {
            write!(f, ";{rule}")?;
        }
        Ok(())
    }
}

/// Error from parsing a fault-plan string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlanParseError(String);

impl fmt::Display for FaultPlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault plan: {}", self.0)
    }
}

impl Error for FaultPlanParseError {}

impl FromStr for FaultPlan {
    type Err = FaultPlanParseError;

    fn from_str(s: &str) -> Result<FaultPlan, FaultPlanParseError> {
        let mut plan = FaultPlan::new(0);
        for (i, part) in s.split(';').enumerate() {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if i == 0 {
                if let Some(seed) = part.strip_prefix("seed=") {
                    plan.seed = seed
                        .parse()
                        .map_err(|_| FaultPlanParseError(format!("seed {seed:?}")))?;
                    continue;
                }
            }
            plan.push(parse_rule(part)?);
        }
        Ok(plan)
    }
}

fn parse_rule(s: &str) -> Result<FaultRule, FaultPlanParseError> {
    let err = || FaultPlanParseError(format!("rule {s:?}"));
    let (lhs, rhs) = s.split_once('=').ok_or_else(err)?;
    // Left side: NAME[@FROM[+COUNT]].
    let (name, from, count) = match lhs.split_once('@') {
        None => (lhs, 0, u64::MAX),
        Some((name, window)) => {
            let (from, count) = match window.split_once('+') {
                None => (window.parse().map_err(|_| err())?, u64::MAX),
                Some((f, c)) => (f.parse().map_err(|_| err())?, c.parse().map_err(|_| err())?),
            };
            (name, from, count)
        }
    };
    if name.is_empty() {
        return Err(err());
    }
    // Right side: KIND[*FACTOR][?PROB].
    let (kind_str, probability) = match rhs.split_once('?') {
        None => (rhs, 1.0),
        Some((k, p)) => (k, p.parse::<f64>().map_err(|_| err())?),
    };
    let kind = match kind_str.split_once('*') {
        None => match kind_str {
            "error" => FaultKind::LaunchError,
            "wrong" => FaultKind::WrongOutput,
            "poison" => FaultKind::Poison,
            "hang" => FaultKind::Hang(DEFAULT_HANG_FACTOR),
            _ => return Err(err()),
        },
        Some(("hang", n)) => FaultKind::Hang(n.parse().map_err(|_| err())?),
        Some(_) => return Err(err()),
    };
    if !(0.0..=1.0).contains(&probability) {
        return Err(err());
    }
    Ok(FaultRule::new(name, kind)
        .window(from, count)
        .with_probability(probability))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_through_display() {
        let text = "seed=7;scalar=error;vector@2+1=wrong;texture=hang*64;padded@0+4=poison?0.5";
        let plan: FaultPlan = text.parse().unwrap();
        assert_eq!(plan.seed(), 7);
        assert_eq!(plan.rules().len(), 4);
        assert_eq!(plan.to_string(), text);
        let again: FaultPlan = plan.to_string().parse().unwrap();
        assert_eq!(again, plan);
    }

    #[test]
    fn parse_defaults_and_shorthands() {
        let plan: FaultPlan = "v=hang;w@3=error".parse().unwrap();
        assert_eq!(plan.seed(), 0);
        assert_eq!(plan.rules()[0].kind, FaultKind::Hang(DEFAULT_HANG_FACTOR));
        assert_eq!(plan.rules()[1].from, 3);
        assert_eq!(plan.rules()[1].count, u64::MAX);
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "v",
            "=error",
            "v=explode",
            "v@x=error",
            "v=hang*x",
            "v=wrong?2",
        ] {
            assert!(bad.parse::<FaultPlan>().is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn windows_select_launch_indexes() {
        let mut plan =
            FaultPlan::new(0).with(FaultRule::new("v", FaultKind::LaunchError).window(1, 2));
        let hits: Vec<bool> = (0..5).map(|_| plan.decide("v").is_some()).collect();
        assert_eq!(hits, [false, true, true, false, false]);
        assert_eq!(plan.launches_of("v"), 5);
        assert_eq!(plan.total_injected(), 2);
        // Other variants are untouched.
        assert_eq!(plan.decide("w"), None);
    }

    #[test]
    fn first_covering_rule_wins_and_failed_draws_fall_through() {
        let mut plan = FaultPlan::new(1)
            .with(FaultRule::new("v", FaultKind::WrongOutput).with_probability(0.0))
            .with(FaultRule::new("v", FaultKind::Poison));
        // The first rule never fires; the second always does.
        assert_eq!(plan.decide("v"), Some(FaultKind::Poison));
    }

    #[test]
    fn probability_draws_are_deterministic_and_roughly_calibrated() {
        let run = |seed| {
            let mut plan = FaultPlan::new(seed)
                .with(FaultRule::new("v", FaultKind::LaunchError).with_probability(0.3));
            (0..1000).filter(|_| plan.decide("v").is_some()).count()
        };
        assert_eq!(run(9), run(9));
        let hits = run(9);
        assert!((200..400).contains(&hits), "0.3 prob fired {hits}/1000");
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn reset_replays_the_same_decisions() {
        let mut plan: FaultPlan = "seed=3;v=wrong?0.5".parse().unwrap();
        let first: Vec<_> = (0..20).map(|_| plan.decide("v")).collect();
        let log = plan.injected().to_vec();
        plan.reset();
        assert!(plan.injected().is_empty());
        assert_eq!(plan.launches_of("v"), 0);
        let second: Vec<_> = (0..20).map(|_| plan.decide("v")).collect();
        assert_eq!(first, second);
        assert_eq!(plan.injected(), log);
    }
}
