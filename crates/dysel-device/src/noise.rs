//! Seeded measurement-noise model.
//!
//! The paper observes (§5.2) that profiling accuracy suffers when the
//! profiled unit of work is small enough for system noise to matter,
//! particularly on CPUs (the `spmv-csr` 95%-accuracy case). We reproduce
//! that effect with a deterministic multiplicative noise source applied to
//! *measured* times only — the true completion times that drive the virtual
//! schedule stay exact.

use dysel_kernel::XorShiftRng;

use crate::Cycles;

/// Deterministic multiplicative noise: `measured = true * (1 + sigma * z)`
/// with `z` approximately standard normal (sum of uniforms), clamped so the
/// result stays positive.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    sigma: f64,
    rng: XorShiftRng,
    seed: u64,
}

impl NoiseModel {
    /// Creates a noise model with relative standard deviation `sigma`.
    pub fn new(sigma: f64, seed: u64) -> Self {
        NoiseModel {
            sigma: sigma.max(0.0),
            rng: XorShiftRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The configured relative standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Re-arms the generator to its initial seed.
    pub fn reset(&mut self) {
        self.rng = XorShiftRng::seed_from_u64(self.seed);
    }

    /// Applies noise to a measured span.
    pub fn perturb(&mut self, t: Cycles) -> Cycles {
        if self.sigma == 0.0 {
            return t;
        }
        // Irwin–Hall(12) - 6 is close to N(0,1) and cheap/deterministic.
        let z: f64 = (0..12).map(|_| self.rng.next_f64()).sum::<f64>() - 6.0;
        let factor = (1.0 + self.sigma * z).max(0.05);
        Cycles::from_f64(t.as_f64() * factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_sigma_is_identity() {
        let mut n = NoiseModel::new(0.0, 1);
        assert_eq!(n.perturb(Cycles(1000)), Cycles(1000));
    }

    #[test]
    fn reset_replays_the_same_sequence() {
        let mut n = NoiseModel::new(0.05, 42);
        let a: Vec<Cycles> = (0..5).map(|_| n.perturb(Cycles(10_000))).collect();
        n.reset();
        let b: Vec<Cycles> = (0..5).map(|_| n.perturb(Cycles(10_000))).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn noise_is_centered_and_bounded() {
        let mut n = NoiseModel::new(0.02, 7);
        let mean: f64 = (0..200)
            .map(|_| n.perturb(Cycles(100_000)).as_f64())
            .sum::<f64>()
            / 200.0;
        assert!((mean - 100_000.0).abs() / 100_000.0 < 0.01, "mean {mean}");
    }

    #[test]
    fn result_stays_positive() {
        let mut n = NoiseModel::new(5.0, 3); // absurd sigma
        for _ in 0..100 {
            assert!(n.perturb(Cycles(100)).0 > 0);
        }
    }
}
