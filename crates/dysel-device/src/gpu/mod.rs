//! Deterministic throughput-GPU timing model.
//!
//! Mirrors the paper's GPU target (an NVIDIA K20c, Kepler): streaming
//! multiprocessors executing 32-lane warps, global-memory coalescing into
//! 128-byte segments, a small per-SM read-only/texture cache, constant
//! broadcast, scratchpad banking, occupancy limits, concurrent streams and
//! an in-kernel cycle counter used for micro-profiling measurement (§3.3).

mod cost;

pub use cost::{coalesced_segments, gather_segments, smem_conflict_degree};

use std::sync::Arc;

use dysel_kernel::{Args, TraceView, VariantMeta};

use crate::cycles::path::PricingPath;
use dysel_obs::EventSink;

use crate::cpu::{CacheConfig, SetAssocCache};
use crate::device::{
    BatchEntry, BudgetPolicy, Device, DeviceKind, LaunchOutcome, LaunchSpec, StreamId, StreamTable,
};
use crate::exec::{launch_batch_engine, Executor, PriceModel};
use crate::fault::FaultPlan;
use crate::noise::NoiseModel;
use crate::sched::UnitPool;
use crate::Cycles;

/// GPU hardware generation, selecting a parameter preset.
///
/// The PORPLE-style baseline chooses placements from these presets; using a
/// preset that does not match the executing device reproduces the paper's
/// "policy generated for Fermi, run on Kepler" situation (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuGeneration {
    /// Fermi-class (GTX 480-ish): global loads L1-cached, small texture
    /// cache, narrower segments.
    Fermi,
    /// Kepler-class (K20c) — the paper's evaluation device.
    Kepler,
    /// Maxwell-class: larger unified texture/L1 path.
    Maxwell,
}

impl GpuGeneration {
    /// All generations, stable order.
    pub fn all() -> [GpuGeneration; 3] {
        [
            GpuGeneration::Fermi,
            GpuGeneration::Kepler,
            GpuGeneration::Maxwell,
        ]
    }
}

impl std::fmt::Display for GpuGeneration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            GpuGeneration::Fermi => "fermi",
            GpuGeneration::Kepler => "kepler",
            GpuGeneration::Maxwell => "maxwell",
        })
    }
}

/// GPU model parameters.
#[derive(Debug, Clone)]
pub struct GpuConfig {
    /// Generation the parameters describe.
    pub generation: GpuGeneration,
    /// Number of streaming multiprocessors.
    pub sms: u32,
    /// Lanes per warp.
    pub warp_lanes: u32,
    /// Max resident work-groups per SM.
    pub max_groups_per_sm: u32,
    /// Max resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Scratchpad bytes per SM.
    pub smem_per_sm: u32,
    /// Issue cycles per warp instruction.
    pub issue_cycles: f64,
    /// Coalescing segment size in bytes.
    pub segment_bytes: u32,
    /// Throughput cost per global-memory segment per warp access.
    pub gmem_segment_cycles: f64,
    /// Whether global loads are cached in the texture-path cache
    /// (Fermi's L1, Maxwell's unified cache).
    pub global_loads_cached: bool,
    /// Per-SM read-only/texture cache.
    pub tex_cache: CacheConfig,
    /// Texture hit cost per warp access.
    pub tex_hit_cycles: f64,
    /// Constant-broadcast cost (all lanes on one word).
    pub const_broadcast_cycles: f64,
    /// Serialization cost per extra distinct word in a constant access.
    pub const_serialize_cycles: f64,
    /// Scratchpad cost per warp access per conflict way.
    pub smem_cycles: f64,
    /// Atomic cost per distinct word plus contention serialization.
    pub atomic_cycles: f64,
    /// Fixed scheduling cost per work-group.
    pub group_overhead_cycles: f64,
    /// Per-launch driver overhead.
    pub launch_overhead: Cycles,
    /// Host stream-query latency (`cudaStreamQuery`, §5.1: typically
    /// longer than a micro-profiling run itself).
    pub query_latency: Cycles,
    /// Relative std-dev of the in-kernel clock measurement.
    pub noise_sigma: f64,
    /// Relative std-dev of per-work-group execution jitter.
    pub exec_sigma: f64,
    /// Noise seed.
    pub seed: u64,
    /// Worker threads for the functional phase of launches (0 = one per
    /// available host core). Any value yields bit-identical results; see
    /// [`crate::Executor`].
    pub threads: usize,
}

impl GpuConfig {
    /// The paper's evaluation device: a Kepler K20c.
    pub fn kepler_k20c() -> Self {
        GpuConfig {
            generation: GpuGeneration::Kepler,
            sms: 13,
            warp_lanes: 32,
            max_groups_per_sm: 16,
            max_threads_per_sm: 2048,
            smem_per_sm: 48 << 10,
            issue_cycles: 1.0,
            segment_bytes: 128,
            gmem_segment_cycles: 10.0,
            global_loads_cached: false,
            tex_cache: CacheConfig {
                capacity: 48 << 10,
                ways: 24,
                line: 32,
            },
            tex_hit_cycles: 4.0,
            const_broadcast_cycles: 4.0,
            const_serialize_cycles: 18.0,
            smem_cycles: 2.0,
            atomic_cycles: 30.0,
            group_overhead_cycles: 200.0,
            launch_overhead: Cycles(4000),
            query_latency: Cycles(6000),
            noise_sigma: 0.01,
            exec_sigma: 0.004,
            seed: 0x6B20C,
            threads: 0,
        }
    }

    /// A Fermi-class preset.
    pub fn fermi() -> Self {
        GpuConfig {
            generation: GpuGeneration::Fermi,
            sms: 14,
            max_groups_per_sm: 8,
            max_threads_per_sm: 1536,
            gmem_segment_cycles: 14.0,
            global_loads_cached: true,
            tex_cache: CacheConfig {
                capacity: 8 << 10,
                ways: 16,
                line: 32,
            },
            tex_hit_cycles: 6.0,
            const_serialize_cycles: 14.0,
            ..GpuConfig::kepler_k20c()
        }
    }

    /// A Maxwell-class preset.
    pub fn maxwell() -> Self {
        GpuConfig {
            generation: GpuGeneration::Maxwell,
            sms: 16,
            gmem_segment_cycles: 9.0,
            global_loads_cached: true,
            tex_cache: CacheConfig {
                capacity: 24 << 10,
                ways: 24,
                line: 32,
            },
            tex_hit_cycles: 4.0,
            ..GpuConfig::kepler_k20c()
        }
    }

    /// Preset for a generation.
    pub fn for_generation(g: GpuGeneration) -> Self {
        match g {
            GpuGeneration::Fermi => GpuConfig::fermi(),
            GpuGeneration::Kepler => GpuConfig::kepler_k20c(),
            GpuGeneration::Maxwell => GpuConfig::maxwell(),
        }
    }

    /// Zero-noise copy for tests.
    pub fn noiseless(mut self) -> Self {
        self.noise_sigma = 0.0;
        self.exec_sigma = 0.0;
        self
    }

    /// Resident work-groups per SM for a variant's footprint.
    pub fn occupancy(&self, group_size: u32, smem_bytes: u32) -> u32 {
        let by_groups = self.max_groups_per_sm;
        let by_threads = (self.max_threads_per_sm / group_size.max(1)).max(1);
        let by_smem = self
            .smem_per_sm
            .checked_div(smem_bytes)
            .map_or(u32::MAX, |q| q.max(1));
        by_groups.min(by_threads).min(by_smem).max(1)
    }

    /// Latency-exposure multiplier for low occupancy: with fewer than four
    /// resident groups an SM cannot hide memory latency.
    pub fn latency_factor(&self, occupancy: u32) -> f64 {
        if occupancy >= 4 {
            1.0
        } else {
            1.0 + 0.15 * f64::from(4 - occupancy)
        }
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::kepler_k20c()
    }
}

/// The GPU device model.
///
/// # Example
///
/// ```
/// use dysel_device::{Device, GpuConfig, GpuDevice};
/// let gpu = GpuDevice::new(GpuConfig::kepler_k20c());
/// assert_eq!(gpu.units(), 13);
/// ```
#[derive(Debug)]
pub struct GpuDevice {
    cfg: GpuConfig,
    pool: UnitPool,
    tex_caches: Vec<SetAssocCache>,
    streams: StreamTable,
    noise: NoiseModel,
    exec_noise: NoiseModel,
    exec: Executor,
    fault: Option<FaultPlan>,
    budget: Option<BudgetPolicy>,
    obs: Option<Arc<EventSink>>,
}

impl GpuDevice {
    /// Builds a GPU device from a configuration.
    pub fn new(cfg: GpuConfig) -> Self {
        let tex_caches = (0..cfg.sms)
            .map(|_| SetAssocCache::new(cfg.tex_cache))
            .collect();
        GpuDevice {
            pool: UnitPool::new(cfg.sms as usize),
            tex_caches,
            streams: StreamTable::default(),
            noise: NoiseModel::new(cfg.noise_sigma, cfg.seed),
            exec_noise: NoiseModel::new(cfg.exec_sigma, cfg.seed ^ 0x9E37_79B9),
            exec: Executor::new(cfg.threads),
            fault: None,
            budget: None,
            obs: None,
            cfg,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// The functional-phase executor (exposes the resolved worker count).
    pub fn executor(&self) -> &Executor {
        &self.exec
    }
}

/// Prices recorded traces against per-SM texture-cache state.
struct GpuPriceModel<'a> {
    cfg: &'a GpuConfig,
    tex_caches: &'a mut [SetAssocCache],
    /// Scalar reference vs batched fast path, pinned for the launch.
    path: PricingPath,
    /// Segment-id scratch lent to the cost sinks (lives for the launch, so
    /// the batched path allocates at most once per launch batch).
    scratch: Vec<u64>,
}

impl PriceModel for GpuPriceModel<'_> {
    fn group_cost(&mut self, sm: usize, meta: &VariantMeta, trace: TraceView<'_>) -> Cycles {
        let occ = self
            .cfg
            .occupancy(meta.group_size, meta.ir.scratchpad_bytes);
        let lat_factor = self.cfg.latency_factor(occ);
        let mut sink = cost::GpuCostSink::new(
            self.cfg,
            &mut self.tex_caches[sm],
            self.path,
            &mut self.scratch,
        );
        trace.replay(&mut sink);
        sink.total(lat_factor)
    }
}

impl Default for GpuDevice {
    fn default() -> Self {
        GpuDevice::new(GpuConfig::default())
    }
}

impl Device for GpuDevice {
    fn kind(&self) -> DeviceKind {
        DeviceKind::Gpu
    }

    fn name(&self) -> String {
        format!("gpu/{}-{}sm", self.cfg.generation, self.cfg.sms)
    }

    fn units(&self) -> u32 {
        self.cfg.sms
    }

    fn launch_overhead(&self) -> Cycles {
        self.cfg.launch_overhead
    }

    fn query_latency(&self) -> Cycles {
        self.cfg.query_latency
    }

    fn launch(&mut self, spec: LaunchSpec<'_>) -> LaunchOutcome {
        let entry = BatchEntry {
            kernel: spec.kernel,
            meta: spec.meta,
            units: spec.units,
            target: 0,
            stream: spec.stream,
            not_before: spec.not_before,
            measured: spec.measured,
            budget: spec.budget,
        };
        self.launch_batch(&[entry], &mut [spec.args])
            .pop()
            .expect("one outcome per entry")
    }

    fn launch_batch(
        &mut self,
        entries: &[BatchEntry<'_>],
        targets: &mut [&mut Args],
    ) -> Vec<LaunchOutcome> {
        // Launch overhead overlaps execution of earlier work in the same
        // stream (pipelined enqueue): only the issue side pays it. The
        // measured value is the in-kernel clock readout (Fig. 7): atomicMin
        // of first block start / atomicMax-ish of last block end, summed as
        // busy time and read back by the host.
        let mut model = GpuPriceModel {
            cfg: &self.cfg,
            tex_caches: &mut self.tex_caches,
            path: crate::cycles::path::pricing_path(),
            scratch: Vec::new(),
        };
        launch_batch_engine(
            &self.exec,
            entries,
            targets,
            &mut self.streams,
            &mut self.pool,
            &mut self.exec_noise,
            &mut self.noise,
            self.cfg.launch_overhead,
            &mut model,
            self.fault.as_mut(),
            self.budget,
            self.obs.as_deref(),
        )
    }

    fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan;
    }

    fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    fn set_budget_policy(&mut self, policy: Option<BudgetPolicy>) {
        self.budget = policy;
    }

    fn budget_policy(&self) -> Option<BudgetPolicy> {
        self.budget
    }

    fn set_observer(&mut self, obs: Option<Arc<EventSink>>) {
        self.obs = obs;
    }

    fn observer(&self) -> Option<&Arc<EventSink>> {
        self.obs.as_ref()
    }

    fn stream_end(&self, stream: StreamId) -> Cycles {
        self.streams.end_of(stream)
    }

    fn earliest_unit_free(&self) -> Cycles {
        self.pool.earliest_free()
    }

    fn busy_until(&self) -> Cycles {
        self.pool.busy_until()
    }

    fn reset(&mut self) {
        self.pool.reset();
        self.streams.reset();
        self.noise.reset();
        self.exec_noise.reset();
        for c in &mut self.tex_caches {
            c.reset();
        }
        if let Some(plan) = &mut self.fault {
            plan.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dysel_kernel::{Args, Buffer, KernelIr, Space, UnitRange, Variant, VariantMeta};

    fn gpu() -> GpuDevice {
        GpuDevice::new(GpuConfig::kepler_k20c().noiseless())
    }

    /// A kernel where each group's warps read one row of 1024 floats,
    /// either coalesced (stride 1) or strided.
    fn rowread(stride: i64) -> Variant {
        Variant::from_fn(
            VariantMeta::new(format!("rowread{stride}"), KernelIr::regular(vec![0]))
                .with_group_size(128),
            move |ctx, args| {
                let row = 1024u64;
                for u in ctx.units().iter() {
                    for w in 0..(row / 32) {
                        ctx.warp_load(1, u * row + w * 32, stride, 32);
                    }
                    ctx.vector_compute(row / 32, 32, 32, 1);
                }
                let _ = args;
            },
        )
    }

    fn one_buf_args(n: usize) -> Args {
        let mut a = Args::new();
        a.push(Buffer::f32("out", vec![0.0; 4], Space::Global));
        a.push(Buffer::f32("in", vec![1.0; n], Space::Global));
        a
    }

    fn span_of(v: &Variant, units: u64) -> Cycles {
        let mut dev = gpu();
        let mut a = one_buf_args(1024 * units as usize);
        dev.launch(LaunchSpec {
            kernel: v.kernel.as_ref(),
            meta: &v.meta,
            units: UnitRange::new(0, units),
            args: &mut a,
            stream: StreamId(0),
            not_before: Cycles::ZERO,
            measured: false,
            budget: None,
        })
        .unwrap_done()
        .span()
    }

    #[test]
    fn coalesced_beats_strided() {
        let fast = span_of(&rowread(1), 64);
        let slow = span_of(&rowread(64), 64);
        assert!(
            slow.as_f64() > 5.0 * fast.as_f64(),
            "strided {slow} vs coalesced {fast}"
        );
    }

    #[test]
    fn occupancy_limits() {
        let cfg = GpuConfig::kepler_k20c();
        assert_eq!(cfg.occupancy(128, 0), 16);
        assert_eq!(cfg.occupancy(1024, 0), 2);
        assert_eq!(cfg.occupancy(128, 24 << 10), 2);
        assert!(cfg.latency_factor(2) > cfg.latency_factor(8));
    }

    #[test]
    fn streams_share_sms_but_are_ordered_within() {
        let mut dev = gpu();
        let v = rowread(1);
        let mut a = one_buf_args(1024 * 26);
        let r1 = dev.launch(LaunchSpec {
            kernel: v.kernel.as_ref(),
            meta: &v.meta,
            units: UnitRange::new(0, 13),
            args: &mut a,
            stream: StreamId(1),
            not_before: Cycles::ZERO,
            measured: false,
            budget: None,
        });
        let r1 = r1.unwrap_done();
        let r2 = dev.launch(LaunchSpec {
            kernel: v.kernel.as_ref(),
            meta: &v.meta,
            units: UnitRange::new(13, 26),
            args: &mut a,
            stream: StreamId(1),
            not_before: Cycles::ZERO,
            measured: false,
            budget: None,
        });
        let r2 = r2.unwrap_done();
        // Same stream: second launch starts after the first ends.
        assert!(r2.start >= r1.end);
    }

    #[test]
    fn generations_have_distinct_cost_structure() {
        let k = GpuConfig::kepler_k20c();
        let f = GpuConfig::fermi();
        let m = GpuConfig::maxwell();
        assert_ne!(k.gmem_segment_cycles, f.gmem_segment_cycles);
        assert!(k.tex_cache.capacity > f.tex_cache.capacity);
        assert!(f.global_loads_cached && !k.global_loads_cached);
        assert!(m.global_loads_cached);
    }

    #[test]
    fn measured_span_reported() {
        let mut dev = gpu();
        let v = rowread(1);
        let mut a = one_buf_args(1024 * 13);
        let rec = dev.launch(LaunchSpec {
            kernel: v.kernel.as_ref(),
            meta: &v.meta,
            units: UnitRange::new(0, 13),
            args: &mut a,
            stream: StreamId(0),
            not_before: Cycles::ZERO,
            measured: true,
            budget: None,
        });
        let rec = rec.unwrap_done();
        // Throughput-normalized measurement: the busy-time sum, which for
        // 13 equal groups on 13 SMs is ~13x the wall span.
        assert_eq!(rec.measured, Some(rec.busy));
        assert!(rec.busy >= rec.span());
    }
}
