//! Warp-level cost accounting for the GPU model.

use dysel_kernel::{MemOp, Space, TraceSink};

use crate::cpu::SetAssocCache;
use crate::Cycles;

use super::GpuConfig;

/// Number of `segment_bytes`-sized memory segments touched by a warp whose
/// lane `l` accesses `base + l * stride` (`elem` bytes each).
pub fn coalesced_segments(
    base: u64,
    stride: i64,
    lanes: u32,
    elem: u32,
    segment_bytes: u32,
) -> u32 {
    if lanes == 0 {
        return 0;
    }
    let seg = i64::from(segment_bytes);
    let mut segments: Vec<i64> = (0..lanes)
        .flat_map(|l| {
            let a = base as i64 + i64::from(l) * stride;
            let first = a / seg;
            let last = (a + i64::from(elem) - 1) / seg;
            [first, last]
        })
        .collect();
    segments.sort_unstable();
    segments.dedup();
    segments.len() as u32
}

/// Number of segments touched by a gather over arbitrary addresses.
pub fn gather_segments(addrs: &[u64], elem: u32, segment_bytes: u32) -> u32 {
    let seg = u64::from(segment_bytes);
    let mut segments: Vec<u64> = addrs
        .iter()
        .flat_map(|&a| [a / seg, (a + u64::from(elem) - 1) / seg])
        .collect();
    segments.sort_unstable();
    segments.dedup();
    segments.len() as u32
}

/// Bank-conflict degree of a strided scratchpad access: the maximum number
/// of lanes that map to the same of 32 4-byte banks.
pub fn smem_conflict_degree(stride_words: i64, lanes: u32) -> u32 {
    if lanes == 0 {
        return 0;
    }
    if stride_words == 0 {
        return 1; // broadcast
    }
    let mut banks = [0u32; 32];
    for l in 0..lanes {
        let bank = ((i64::from(l) * stride_words).rem_euclid(32)) as usize;
        banks[bank] += 1;
    }
    banks.iter().copied().max().unwrap_or(1).max(1)
}

/// Prices a work-group's trace for one SM.
pub(super) struct GpuCostSink<'a> {
    cfg: &'a GpuConfig,
    tex: &'a mut SetAssocCache,
    mem_cycles: f64,
    compute_cycles: f64,
}

impl<'a> GpuCostSink<'a> {
    pub(super) fn new(cfg: &'a GpuConfig, tex: &'a mut SetAssocCache) -> Self {
        GpuCostSink {
            cfg,
            tex,
            mem_cycles: 0.0,
            compute_cycles: 0.0,
        }
    }

    /// Total group cost: memory segments and warp instructions share the
    /// SM's issue bandwidth (serialized throughput model), scaled by the
    /// occupancy latency factor, plus fixed scheduling cost.
    pub(super) fn total(&self, latency_factor: f64) -> Cycles {
        let busy = self.mem_cycles + self.compute_cycles;
        Cycles::from_f64(busy * latency_factor + self.cfg.group_overhead_cycles)
    }

    fn price_global_segments(&mut self, segments: u32, cached: bool) {
        if cached || self.cfg.global_loads_cached {
            // Reads may hit the read-only path cache.
            // (Approximated at segment granularity.)
            self.mem_cycles += f64::from(segments) * self.cfg.gmem_segment_cycles * 0.6;
        } else {
            self.mem_cycles += f64::from(segments) * self.cfg.gmem_segment_cycles;
        }
    }

    fn price_texture(&mut self, addrs: impl IntoIterator<Item = u64>) {
        // Texture path: per 32-byte texture line, hit in the per-SM cache
        // or pay a global segment fetch.
        let line = u64::from(self.tex.config().line);
        let mut lines: Vec<u64> = addrs.into_iter().map(|a| a / line).collect();
        lines.dedup();
        let mut hits = 0u32;
        let mut misses = 0u32;
        for l in lines {
            if self.tex.access_line(l) {
                hits += 1;
            } else {
                misses += 1;
            }
        }
        // A texture miss fetches a 32-byte line: cheaper than a full
        // 128-byte global segment, plus the cache-pipeline latency.
        self.mem_cycles += f64::from(hits) * self.cfg.tex_hit_cycles
            + f64::from(misses) * (0.6 * self.cfg.gmem_segment_cycles + self.cfg.tex_hit_cycles);
    }

    fn price_constant(&mut self, distinct_words: u32) {
        self.mem_cycles += self.cfg.const_broadcast_cycles
            + f64::from(distinct_words.saturating_sub(1)) * self.cfg.const_serialize_cycles;
    }
}

impl TraceSink for GpuCostSink<'_> {
    fn mem(&mut self, op: &MemOp) {
        match op {
            MemOp::Warp {
                space,
                base,
                stride,
                lanes,
                elem,
                store,
            } => match space {
                Space::Global => {
                    let segs =
                        coalesced_segments(*base, *stride, *lanes, *elem, self.cfg.segment_bytes);
                    self.price_global_segments(segs, false);
                    let _ = store;
                }
                Space::Texture => {
                    let addrs = (0..*lanes).map(|l| (*base as i64 + i64::from(l) * stride) as u64);
                    self.price_texture(addrs);
                }
                Space::Constant => {
                    let distinct = if *stride == 0 { 1 } else { *lanes };
                    self.price_constant(distinct);
                }
                Space::Scratchpad => {
                    let words = stride / 4;
                    let conflict = smem_conflict_degree(words, *lanes);
                    self.mem_cycles += self.cfg.smem_cycles * f64::from(conflict);
                }
            },
            MemOp::WarpSeq {
                space,
                base,
                stride,
                lanes,
                elem,
                repeat,
                step,
                ..
            } => match space {
                Space::Global => {
                    // Lane shape is constant: sample the segment count at
                    // two alignments and scale by the repeat count.
                    let s0 =
                        coalesced_segments(*base, *stride, *lanes, *elem, self.cfg.segment_bytes);
                    let s1 = coalesced_segments(
                        (*base as i64 + step).max(0) as u64,
                        *stride,
                        *lanes,
                        *elem,
                        self.cfg.segment_bytes,
                    );
                    let per = f64::from(s0 + s1) / 2.0;
                    self.mem_cycles += per * f64::from(*repeat) * self.cfg.gmem_segment_cycles;
                }
                Space::Scratchpad => {
                    let conflict = smem_conflict_degree(stride / 4, *lanes);
                    self.mem_cycles +=
                        self.cfg.smem_cycles * f64::from(conflict) * f64::from(*repeat);
                }
                Space::Constant => {
                    let distinct = if *stride == 0 { 1 } else { *lanes };
                    for _ in 0..*repeat {
                        self.price_constant(distinct);
                    }
                }
                Space::Texture => {
                    for k in 0..i64::from(*repeat) {
                        let b = (*base as i64 + k * step) as u64;
                        let addrs = (0..*lanes).map(|l| (b as i64 + i64::from(l) * stride) as u64);
                        self.price_texture(addrs);
                    }
                }
            },
            MemOp::Gather {
                space, addrs, elem, ..
            } => match space {
                Space::Global => {
                    let segs = gather_segments(addrs, *elem, self.cfg.segment_bytes);
                    self.price_global_segments(segs, false);
                }
                Space::Texture => {
                    self.price_texture(addrs.iter().copied());
                }
                Space::Constant => {
                    let mut d = addrs.clone();
                    d.sort_unstable();
                    d.dedup();
                    self.price_constant(d.len() as u32);
                }
                Space::Scratchpad => {
                    // Banked: compute conflict degree from the word addresses.
                    let mut banks = [0u32; 32];
                    for &a in addrs {
                        banks[((a / 4) % 32) as usize] += 1;
                    }
                    let conflict = banks.iter().copied().max().unwrap_or(1).max(1);
                    self.mem_cycles += self.cfg.smem_cycles * f64::from(conflict);
                }
            },
            MemOp::Stream {
                space,
                base,
                count,
                stride,
                elem: _,
                ..
            } => {
                // A single-thread sequential loop on a GPU: each access is a
                // (mostly) un-coalesced transaction unless consecutive
                // accesses share a segment.
                if *count == 0 {
                    return;
                }
                match space {
                    Space::Scratchpad => {
                        self.mem_cycles += *count as f64 * self.cfg.smem_cycles;
                    }
                    Space::Texture => {
                        let addrs = (0..*count).map(|i| (*base as i64 + i as i64 * stride) as u64);
                        self.price_texture(addrs);
                    }
                    _ => {
                        let seg = i64::from(self.cfg.segment_bytes);
                        let per_seg = if *stride == 0 {
                            *count
                        } else {
                            ((seg / stride.abs()).max(1)) as u64
                        };
                        let segs = count.div_ceil(per_seg) as u32;
                        self.price_global_segments(segs, false);
                    }
                }
            }
            MemOp::Atomic {
                lanes, distinct, ..
            } => {
                // Each distinct word pays one atomic transaction; contended
                // lanes serialize behind it.
                let contention = f64::from(*lanes) / f64::from((*distinct).max(1));
                self.mem_cycles +=
                    f64::from(*distinct) * self.cfg.atomic_cycles * contention.max(1.0);
            }
            MemOp::Scratchpad {
                lanes: _, conflict, ..
            } => {
                self.mem_cycles += self.cfg.smem_cycles * f64::from((*conflict).max(1));
            }
        }
    }

    fn compute(&mut self, ops: u64) {
        // Scalar ops aggregate into warp instructions.
        let warp_ops = ops.div_ceil(32);
        self.compute_cycles += warp_ops as f64 * self.cfg.issue_cycles;
    }

    fn vector_compute(&mut self, iters: u64, _width: u32, _active: u32, ops_per_iter: u64) {
        // One warp instruction per (iteration, op): issue-bound regardless
        // of how many lanes do useful work — warp underutilization shows up
        // as *more iterations per useful element*, not cheaper iterations.
        self.compute_cycles += (iters * ops_per_iter) as f64 * self.cfg.issue_cycles;
    }

    fn barrier(&mut self) {
        self.compute_cycles += 8.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_coalesced_is_one_segment() {
        // 32 lanes x 4B consecutive = 128B aligned at 0.
        assert_eq!(coalesced_segments(0, 4, 32, 4, 128), 1);
        // Misaligned by one element straddles two segments.
        assert_eq!(coalesced_segments(4, 4, 32, 4, 128), 2);
    }

    #[test]
    fn strided_warp_touches_many_segments() {
        assert_eq!(coalesced_segments(0, 128, 32, 4, 128), 32);
        assert_eq!(coalesced_segments(0, 0, 32, 4, 128), 1); // broadcast
    }

    #[test]
    fn gather_segments_dedupes() {
        let addrs: Vec<u64> = (0..32).map(|l| l * 4).collect();
        assert_eq!(gather_segments(&addrs, 4, 128), 1);
        let scattered: Vec<u64> = (0..32).map(|l| l * 4096).collect();
        assert_eq!(gather_segments(&scattered, 4, 128), 32);
    }

    #[test]
    fn smem_conflicts() {
        assert_eq!(smem_conflict_degree(1, 32), 1); // unit stride: none
        assert_eq!(smem_conflict_degree(2, 32), 2); // 2-way
        assert_eq!(smem_conflict_degree(32, 32), 32); // same bank: full
        assert_eq!(smem_conflict_degree(0, 32), 1); // broadcast
    }
}
