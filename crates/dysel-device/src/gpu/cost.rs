//! Warp-level cost accounting for the GPU model.

use dysel_kernel::{MemOp, Space, TraceSink};

use crate::cpu::SetAssocCache;
use crate::cycles::{lanes, path::PricingPath};
use crate::Cycles;

use super::GpuConfig;

/// Number of `segment_bytes`-sized memory segments touched by a warp whose
/// lane `l` accesses `base + l * stride` (`elem` bytes each).
pub fn coalesced_segments(
    base: u64,
    stride: i64,
    lanes: u32,
    elem: u32,
    segment_bytes: u32,
) -> u32 {
    if lanes == 0 {
        return 0;
    }
    let seg = i64::from(segment_bytes);
    let mut segments: Vec<i64> = (0..lanes)
        .flat_map(|l| {
            let a = base as i64 + i64::from(l) * stride;
            let first = a / seg;
            let last = (a + i64::from(elem) - 1) / seg;
            [first, last]
        })
        .collect();
    segments.sort_unstable();
    segments.dedup();
    segments.len() as u32
}

/// Batched twin of [`coalesced_segments`]: the lane addresses are affine
/// in the lane index, so the distinct-segment count falls out of a
/// two-pointer merge with no sort and no allocation. Must return exactly
/// the scalar function's count (enforced by tests and the `pricing_diff`
/// differential suite).
pub fn coalesced_segments_batched(
    base: u64,
    stride: i64,
    lanes_n: u32,
    elem: u32,
    segment_bytes: u32,
) -> u32 {
    lanes::affine_distinct_i64(
        base as i64,
        stride,
        lanes_n,
        i64::from(elem) - 1,
        i64::from(segment_bytes),
    )
}

/// Number of segments touched by a gather over arbitrary addresses.
pub fn gather_segments(addrs: &[u64], elem: u32, segment_bytes: u32) -> u32 {
    let seg = u64::from(segment_bytes);
    let mut segments: Vec<u64> = addrs
        .iter()
        .flat_map(|&a| [a / seg, (a + u64::from(elem) - 1) / seg])
        .collect();
    segments.sort_unstable();
    segments.dedup();
    segments.len() as u32
}

/// Bank-conflict degree of a strided scratchpad access: the maximum number
/// of lanes that map to the same of 32 4-byte banks.
pub fn smem_conflict_degree(stride_words: i64, lanes: u32) -> u32 {
    if lanes == 0 {
        return 0;
    }
    if stride_words == 0 {
        return 1; // broadcast
    }
    let mut banks = [0u32; 32];
    for l in 0..lanes {
        let bank = ((i64::from(l) * stride_words).rem_euclid(32)) as usize;
        banks[bank] += 1;
    }
    banks.iter().copied().max().unwrap_or(1).max(1)
}

/// Prices a work-group's trace for one SM.
pub(super) struct GpuCostSink<'a> {
    cfg: &'a GpuConfig,
    tex: &'a mut SetAssocCache,
    /// Use the chunked fast path for integer-count trace reductions. Both
    /// paths must produce identical counts (DESIGN.md §4.15).
    batched: bool,
    /// Launch-lifetime segment-id buffer lent by the price model, so the
    /// batched path sorts in place instead of allocating per gather.
    scratch: &'a mut Vec<u64>,
    mem_cycles: f64,
    compute_cycles: f64,
}

impl<'a> GpuCostSink<'a> {
    pub(super) fn new(
        cfg: &'a GpuConfig,
        tex: &'a mut SetAssocCache,
        path: PricingPath,
        scratch: &'a mut Vec<u64>,
    ) -> Self {
        GpuCostSink {
            cfg,
            tex,
            batched: path == PricingPath::Batched,
            scratch,
            mem_cycles: 0.0,
            compute_cycles: 0.0,
        }
    }

    /// Distinct-segment count for a warp access, via whichever path is
    /// active.
    fn warp_segments(&self, base: u64, stride: i64, lanes_n: u32, elem: u32) -> u32 {
        if self.batched {
            coalesced_segments_batched(base, stride, lanes_n, elem, self.cfg.segment_bytes)
        } else {
            coalesced_segments(base, stride, lanes_n, elem, self.cfg.segment_bytes)
        }
    }

    /// Total group cost: memory segments and warp instructions share the
    /// SM's issue bandwidth (serialized throughput model), scaled by the
    /// occupancy latency factor, plus fixed scheduling cost.
    pub(super) fn total(&self, latency_factor: f64) -> Cycles {
        let busy = self.mem_cycles + self.compute_cycles;
        Cycles::from_f64(busy * latency_factor + self.cfg.group_overhead_cycles)
    }

    fn price_global_segments(&mut self, segments: u32, cached: bool) {
        if cached || self.cfg.global_loads_cached {
            // Reads may hit the read-only path cache.
            // (Approximated at segment granularity.)
            self.mem_cycles += f64::from(segments) * self.cfg.gmem_segment_cycles * 0.6;
        } else {
            self.mem_cycles += f64::from(segments) * self.cfg.gmem_segment_cycles;
        }
    }

    fn price_texture(&mut self, addrs: impl IntoIterator<Item = u64>) {
        // Texture path: per 32-byte texture line, hit in the per-SM cache
        // or pay a global segment fetch.
        let line = u64::from(self.tex.config().line);
        let mut hits = 0u32;
        let mut misses = 0u32;
        if self.batched {
            // Suppressing *consecutive* duplicate lines needs no buffer:
            // stream the addresses and track the previous line only. The
            // `access_line` call sequence — and thus the cache state and
            // hit/miss counts — is identical to the reference form.
            let mut prev = None;
            for a in addrs {
                let l = a / line;
                if prev == Some(l) {
                    continue;
                }
                prev = Some(l);
                if self.tex.access_line(l) {
                    hits += 1;
                } else {
                    misses += 1;
                }
            }
        } else {
            // Reference form: materialize line ids, drop consecutive
            // duplicates, then probe the cache.
            let mut lines: Vec<u64> = addrs.into_iter().map(|a| a / line).collect();
            lines.dedup();
            for l in lines {
                if self.tex.access_line(l) {
                    hits += 1;
                } else {
                    misses += 1;
                }
            }
        }
        // A texture miss fetches a 32-byte line: cheaper than a full
        // 128-byte global segment, plus the cache-pipeline latency.
        self.mem_cycles += f64::from(hits) * self.cfg.tex_hit_cycles
            + f64::from(misses) * (0.6 * self.cfg.gmem_segment_cycles + self.cfg.tex_hit_cycles);
    }

    fn price_constant(&mut self, distinct_words: u32) {
        self.mem_cycles += self.cfg.const_broadcast_cycles
            + f64::from(distinct_words.saturating_sub(1)) * self.cfg.const_serialize_cycles;
    }

    /// Shared pricing for gathers, whether they arrive as an owned
    /// [`MemOp::Gather`] or through the allocation-free slice entry point.
    fn price_gather(&mut self, space: Space, addrs: &[u64], elem: u32) {
        match space {
            Space::Global => {
                let segs = if self.batched {
                    // Chunked segment-bound computation into the reused
                    // scratch, then a sort-free distinct count is not
                    // possible for arbitrary addresses — sort in place.
                    lanes::seg_bounds_u64(
                        addrs,
                        elem,
                        u64::from(self.cfg.segment_bytes),
                        self.scratch,
                    );
                    lanes::distinct_sorted_u64(self.scratch)
                } else {
                    gather_segments(addrs, elem, self.cfg.segment_bytes)
                };
                self.price_global_segments(segs, false);
            }
            Space::Texture => {
                self.price_texture(addrs.iter().copied());
            }
            Space::Constant => {
                let distinct = if self.batched {
                    self.scratch.clear();
                    self.scratch.extend_from_slice(addrs);
                    lanes::distinct_sorted_u64(self.scratch)
                } else {
                    let mut d = addrs.to_vec();
                    d.sort_unstable();
                    d.dedup();
                    d.len() as u32
                };
                self.price_constant(distinct);
            }
            Space::Scratchpad => {
                // Banked: compute conflict degree from the word addresses.
                let mut banks = [0u32; 32];
                for &a in addrs {
                    banks[((a / 4) % 32) as usize] += 1;
                }
                let conflict = banks.iter().copied().max().unwrap_or(1).max(1);
                self.mem_cycles += self.cfg.smem_cycles * f64::from(conflict);
            }
        }
    }
}

impl TraceSink for GpuCostSink<'_> {
    fn mem(&mut self, op: &MemOp) {
        match op {
            MemOp::Warp {
                space,
                base,
                stride,
                lanes,
                elem,
                store,
            } => match space {
                Space::Global => {
                    let segs = self.warp_segments(*base, *stride, *lanes, *elem);
                    self.price_global_segments(segs, false);
                    let _ = store;
                }
                Space::Texture => {
                    let addrs = (0..*lanes).map(|l| (*base as i64 + i64::from(l) * stride) as u64);
                    self.price_texture(addrs);
                }
                Space::Constant => {
                    let distinct = if *stride == 0 { 1 } else { *lanes };
                    self.price_constant(distinct);
                }
                Space::Scratchpad => {
                    let words = stride / 4;
                    let conflict = smem_conflict_degree(words, *lanes);
                    self.mem_cycles += self.cfg.smem_cycles * f64::from(conflict);
                }
            },
            MemOp::WarpSeq {
                space,
                base,
                stride,
                lanes,
                elem,
                repeat,
                step,
                ..
            } => match space {
                Space::Global => {
                    // Lane shape is constant: sample the segment count at
                    // two alignments and scale by the repeat count.
                    let s0 = self.warp_segments(*base, *stride, *lanes, *elem);
                    let s1 = self.warp_segments(
                        (*base as i64 + step).max(0) as u64,
                        *stride,
                        *lanes,
                        *elem,
                    );
                    let per = f64::from(s0 + s1) / 2.0;
                    self.mem_cycles += per * f64::from(*repeat) * self.cfg.gmem_segment_cycles;
                }
                Space::Scratchpad => {
                    let conflict = smem_conflict_degree(stride / 4, *lanes);
                    self.mem_cycles +=
                        self.cfg.smem_cycles * f64::from(conflict) * f64::from(*repeat);
                }
                Space::Constant => {
                    let distinct = if *stride == 0 { 1 } else { *lanes };
                    for _ in 0..*repeat {
                        self.price_constant(distinct);
                    }
                }
                Space::Texture => {
                    for k in 0..i64::from(*repeat) {
                        let b = (*base as i64 + k * step) as u64;
                        let addrs = (0..*lanes).map(|l| (b as i64 + i64::from(l) * stride) as u64);
                        self.price_texture(addrs);
                    }
                }
            },
            MemOp::Gather {
                space, addrs, elem, ..
            } => self.price_gather(*space, addrs, *elem),
            MemOp::Stream {
                space,
                base,
                count,
                stride,
                elem: _,
                ..
            } => {
                // A single-thread sequential loop on a GPU: each access is a
                // (mostly) un-coalesced transaction unless consecutive
                // accesses share a segment.
                if *count == 0 {
                    return;
                }
                match space {
                    Space::Scratchpad => {
                        self.mem_cycles += *count as f64 * self.cfg.smem_cycles;
                    }
                    Space::Texture => {
                        let addrs = (0..*count).map(|i| (*base as i64 + i as i64 * stride) as u64);
                        self.price_texture(addrs);
                    }
                    _ => {
                        let seg = i64::from(self.cfg.segment_bytes);
                        let per_seg = if *stride == 0 {
                            *count
                        } else {
                            ((seg / stride.abs()).max(1)) as u64
                        };
                        let segs = count.div_ceil(per_seg) as u32;
                        self.price_global_segments(segs, false);
                    }
                }
            }
            MemOp::Atomic {
                lanes, distinct, ..
            } => {
                // Each distinct word pays one atomic transaction; contended
                // lanes serialize behind it.
                let contention = f64::from(*lanes) / f64::from((*distinct).max(1));
                self.mem_cycles +=
                    f64::from(*distinct) * self.cfg.atomic_cycles * contention.max(1.0);
            }
            MemOp::Scratchpad {
                lanes: _, conflict, ..
            } => {
                self.mem_cycles += self.cfg.smem_cycles * f64::from((*conflict).max(1));
            }
        }
    }

    fn gather(&mut self, space: Space, addrs: &[u64], elem: u32, _store: bool) {
        self.price_gather(space, addrs, elem);
    }

    fn compute(&mut self, ops: u64) {
        // Scalar ops aggregate into warp instructions.
        let warp_ops = ops.div_ceil(32);
        self.compute_cycles += warp_ops as f64 * self.cfg.issue_cycles;
    }

    fn vector_compute(&mut self, iters: u64, _width: u32, _active: u32, ops_per_iter: u64) {
        // One warp instruction per (iteration, op): issue-bound regardless
        // of how many lanes do useful work — warp underutilization shows up
        // as *more iterations per useful element*, not cheaper iterations.
        self.compute_cycles += (iters * ops_per_iter) as f64 * self.cfg.issue_cycles;
    }

    fn barrier(&mut self) {
        self.compute_cycles += 8.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_coalesced_is_one_segment() {
        // 32 lanes x 4B consecutive = 128B aligned at 0.
        assert_eq!(coalesced_segments(0, 4, 32, 4, 128), 1);
        // Misaligned by one element straddles two segments.
        assert_eq!(coalesced_segments(4, 4, 32, 4, 128), 2);
    }

    #[test]
    fn strided_warp_touches_many_segments() {
        assert_eq!(coalesced_segments(0, 128, 32, 4, 128), 32);
        assert_eq!(coalesced_segments(0, 0, 32, 4, 128), 1); // broadcast
    }

    #[test]
    fn gather_segments_dedupes() {
        let addrs: Vec<u64> = (0..32).map(|l| l * 4).collect();
        assert_eq!(gather_segments(&addrs, 4, 128), 1);
        let scattered: Vec<u64> = (0..32).map(|l| l * 4096).collect();
        assert_eq!(gather_segments(&scattered, 4, 128), 32);
    }

    #[test]
    fn batched_coalesced_matches_scalar() {
        for &stride in &[-640i64, -128, -4, 0, 3, 4, 12, 127, 128, 640] {
            for &base in &[0u64, 4, 100, (1 << 30) + 36] {
                for &elem in &[4u32, 8] {
                    for &lanes_n in &[0u32, 1, 7, 32] {
                        assert_eq!(
                            coalesced_segments_batched(base, stride, lanes_n, elem, 128),
                            coalesced_segments(base, stride, lanes_n, elem, 128),
                            "base={base} stride={stride} lanes={lanes_n} elem={elem}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn smem_conflicts() {
        assert_eq!(smem_conflict_degree(1, 32), 1); // unit stride: none
        assert_eq!(smem_conflict_degree(2, 32), 2); // 2-way
        assert_eq!(smem_conflict_degree(32, 32), 32); // same bank: full
        assert_eq!(smem_conflict_degree(0, 32), 1); // broadcast
    }
}
