//! The `pricing_diff` differential family: scalar vs batched pricing.
//!
//! The device cost models carry two implementations of every trace
//! reduction — the element-by-element scalar reference and the chunked
//! fixed-width-lane fast path (`dysel-device/src/cycles/lanes.rs`),
//! selected at runtime via [`set_pricing_path`]. Their contract
//! (DESIGN.md §4.15) is **bit-identity**: timelines, launch reports,
//! selection digests, output buffers and observability exports must match
//! byte for byte, at any worker-thread count. This suite runs the full
//! 18-workload × both-target matrix through both paths at 1, 2 and 8
//! threads and diffs everything, then replays the `tests/faults.rs`
//! fault-class matrix (including deadline/preemption watermarks, which
//! are priced-cycle-accurate) under both paths.
//!
//! Sizes are scaled down from the paper inputs so the matrix stays quick
//! in debug builds; `scripts/bench.sh` covers the paper-scale suite.

use std::sync::{Arc, Mutex, MutexGuard};

use dysel::core::{DyselError, LaunchOptions, LaunchReport, Runtime, RuntimeConfig, Timeline};
use dysel::device::{
    set_pricing_path, CpuConfig, CpuDevice, Device, FaultKind, FaultPlan, FaultRule, GpuConfig,
    GpuDevice, PricingPath,
};
use dysel::kernel::{
    Args, Buffer, KernelIr, Orchestration, ProfilingMode, Space, Variant, VariantId, VariantMeta,
};
use dysel::obs::{chrome_trace, jsonl, EventSink};
use dysel::workloads::{
    cutcp, histogram, kmeans, particlefilter, sgemm, spmv_csr, spmv_ell, spmv_jds, stencil,
    CsrMatrix, JdsMatrix, Target, Workload,
};

/// The pricing path is a process-wide switch and the device reads it when
/// it prices a launch, so every differential run holds this lock from
/// "set the path" through "launch finished".
static PATH_LOCK: Mutex<()> = Mutex::new(());

fn path_lock() -> MutexGuard<'static, ()> {
    PATH_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const SEED: u64 = 7;

/// The full workload suite, every family represented: sgemm (schedules,
/// mixed, vector widths), spmv over CSR/ELL/JDS formats (Case I schedules,
/// the Case IV input-sensitive grid on random and diagonal inputs, Case II
/// placements, vector widths), stencil, cutcp (full schedule set and the
/// Case III pair), kmeans, particlefilter and histogram (uniform and
/// skewed). 18 workloads.
fn suite() -> Vec<Workload> {
    let random = CsrMatrix::random(2048, 2048, 0.01, SEED);
    let diagonal = CsrMatrix::diagonal(4096);
    let jds = JdsMatrix::from_csr(&random);
    let shape = cutcp::Shape { n: 32, atoms: 1000 };
    vec![
        sgemm::schedules_workload(64, SEED),
        sgemm::mixed_workload(64, SEED),
        sgemm::vector_workload(64, SEED),
        spmv_csr::case4_workload("spmv-csr(random)", &random, SEED),
        spmv_csr::case4_workload("spmv-csr(diagonal)", &diagonal, SEED),
        spmv_csr::workload(
            "spmv-csr(sched-random)",
            &random,
            SEED,
            spmv_csr::cpu_schedule_variants(random.rows),
            spmv_csr::gpu_case4_variants(random.rows),
        ),
        spmv_csr::workload(
            "spmv-csr(sched-diagonal)",
            &diagonal,
            SEED,
            spmv_csr::cpu_schedule_variants(diagonal.rows),
            spmv_csr::gpu_case4_variants(diagonal.rows),
        ),
        spmv_csr::placement_workload("spmv-csr(placements)", &random, SEED),
        spmv_ell::workload("spmv-ell", &random, SEED),
        spmv_jds::workload(&jds, SEED),
        spmv_jds::vector_workload(&jds, SEED),
        stencil::workload(32, SEED),
        cutcp::workload(shape, SEED),
        cutcp::mixed_workload(shape, SEED),
        kmeans::workload(
            kmeans::Shape {
                n: 2048,
                d: 8,
                k: 4,
            },
            SEED,
        ),
        particlefilter::workload(
            particlefilter::Shape {
                particles: 2048,
                window: 16,
                frame: 1 << 14,
            },
            SEED,
        ),
        histogram::workload(
            64 * histogram::ELEMS_PER_UNIT,
            histogram::Distribution::Uniform,
            SEED,
        ),
        histogram::workload(
            64 * histogram::ELEMS_PER_UNIT,
            histogram::Distribution::Skewed,
            SEED,
        ),
    ]
}

fn device(target: Target, threads: usize) -> Box<dyn Device> {
    match target {
        Target::Cpu => Box::new(CpuDevice::new(CpuConfig {
            threads,
            ..CpuConfig::default()
        })),
        Target::Gpu => Box::new(GpuDevice::new(GpuConfig {
            threads,
            ..GpuConfig::kepler_k20c()
        })),
    }
}

/// Everything one observed DySel launch produces, byte-comparable.
struct RunArtifacts {
    report: LaunchReport,
    timeline: Timeline,
    args: Args,
    trace: String,
    jsonl: String,
    metrics: String,
}

/// One full DySel launch of `w` under the given path/thread setting, with
/// the observability tap on. Holds the path lock for the whole launch so
/// concurrent tests cannot flip the path mid-run.
fn run_one(w: &Workload, target: Target, threads: usize, path: PricingPath) -> RunArtifacts {
    let _guard = path_lock();
    set_pricing_path(Some(path));
    let sink = Arc::new(EventSink::new());
    let mut rt = Runtime::with_config(
        device(target, threads),
        RuntimeConfig {
            profile_threshold_groups: 16,
            observe: Some(sink.clone()),
            ..RuntimeConfig::default()
        },
    );
    rt.add_kernels(&w.signature, w.variants(target).to_vec());
    let mut args = w.fresh_args();
    let report = rt
        .launch(
            &w.signature,
            &mut args,
            w.total_units,
            &LaunchOptions::new(),
        )
        .unwrap_or_else(|e| panic!("{} [{target}]: {e}", w.name));
    w.verify(&args)
        .unwrap_or_else(|e| panic!("{} [{target}] output: {e}", w.name));
    set_pricing_path(None);
    let events = sink.events();
    RunArtifacts {
        report,
        timeline: rt.last_timeline().clone(),
        args,
        trace: chrome_trace(&events),
        jsonl: jsonl(&events),
        metrics: sink.metrics_snapshot().render(),
    }
}

fn assert_identical(label: &str, got: &RunArtifacts, want: &RunArtifacts) {
    assert_eq!(got.report, want.report, "{label}: launch report diverged");
    assert_eq!(got.timeline, want.timeline, "{label}: timeline diverged");
    assert_eq!(got.args.len(), want.args.len(), "{label}: arg count");
    for i in 0..want.args.len() {
        let (a, b) = (got.args.buffer(i).unwrap(), want.args.buffer(i).unwrap());
        assert!(
            !a.bits_differ(b).unwrap(),
            "{label}: buffer {i} ({}) diverged bit-wise",
            a.name()
        );
    }
    assert_eq!(got.trace, want.trace, "{label}: chrome trace diverged");
    assert_eq!(got.jsonl, want.jsonl, "{label}: jsonl export diverged");
    assert_eq!(got.metrics, want.metrics, "{label}: metrics diverged");
}

/// FNV-1a over the `(signature, selected name)` sequence — the same digest
/// the experiment harness prints as `selections=`.
fn fold_selection(digest: &mut u64, report: &LaunchReport) {
    for bytes in [report.signature.as_bytes(), report.selected_name.as_bytes()] {
        for b in bytes.iter().chain(&[0u8]) {
            *digest ^= u64::from(*b);
            *digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// The differential matrix for a set of workloads: batched at 1 thread is
/// the baseline; scalar and batched at 1, 2 and 8 threads must all
/// reproduce it bit-for-bit, and the accumulated selection digests of the
/// scalar and batched sweeps must agree.
fn diff_workloads(workloads: &[Workload]) {
    let mut digest_scalar = 0xcbf2_9ce4_8422_2325u64;
    let mut digest_batched = digest_scalar;
    for w in workloads {
        for target in [Target::Cpu, Target::Gpu] {
            if w.variants(target).is_empty() {
                continue;
            }
            let baseline = run_one(w, target, 1, PricingPath::Batched);
            fold_selection(&mut digest_batched, &baseline.report);
            let scalar = run_one(w, target, 1, PricingPath::Scalar);
            fold_selection(&mut digest_scalar, &scalar.report);
            assert_identical(
                &format!("{} [{target}] scalar@1", w.name),
                &scalar,
                &baseline,
            );
            for threads in [2usize, 8] {
                for path in [PricingPath::Scalar, PricingPath::Batched] {
                    let got = run_one(w, target, threads, path);
                    let label = format!("{} [{target}] {path:?}@{threads}", w.name);
                    assert_identical(&label, &got, &baseline);
                }
            }
        }
    }
    assert_eq!(
        digest_scalar, digest_batched,
        "scalar and batched selection digests diverged"
    );
}

#[test]
fn pricing_diff_sgemm_and_stencil() {
    let s = suite();
    diff_workloads(&[s[0].clone(), s[1].clone(), s[2].clone(), s[11].clone()]);
}

#[test]
fn pricing_diff_spmv_formats() {
    let s = suite();
    diff_workloads(&s[3..11]);
}

#[test]
fn pricing_diff_cutcp() {
    let s = suite();
    diff_workloads(&s[12..14]);
}

#[test]
fn pricing_diff_kmeans_particlefilter_histogram() {
    let s = suite();
    diff_workloads(&s[14..18]);
}

// ---- fault-path differential --------------------------------------------
//
// The graceful-degradation ladder is driven entirely by priced cycles:
// retry budgets, quarantine decisions, deadline discards and cooperative
// preemption watermarks all compare priced virtual time. A pricing path
// that drifted by even one cycle could flip a budget boundary, so the
// `tests/faults.rs` fault-class matrix is replayed here under both paths
// and every report (including `faults.preempted_cycles`) must agree.

const N: u64 = 4096;

fn writer(name: &str, cost: u64) -> Variant {
    Variant::from_fn(
        VariantMeta::new(name, KernelIr::regular(vec![0])),
        move |ctx, args| {
            for u in ctx.units().iter() {
                let x = args.f32(1).unwrap()[u as usize];
                args.f32_mut(0).unwrap()[u as usize] = 2.0 * x + 1.0;
                ctx.vector_compute(cost, 8, 8, 1);
            }
        },
    )
}

fn fault_args() -> Args {
    let mut a = Args::new();
    a.push(Buffer::f32("out", vec![0.0; N as usize], Space::Global));
    a.push(Buffer::f32(
        "in",
        (0..N).map(|i| i as f32).collect(),
        Space::Global,
    ));
    a
}

fn fault_runtime(plan: Option<FaultPlan>) -> Runtime {
    let mut dev = CpuDevice::new(CpuConfig::noiseless());
    dev.set_fault_plan(plan);
    let mut rt = Runtime::with_config(
        Box::new(dev),
        RuntimeConfig {
            profile_threshold_groups: 16,
            validate_outputs: true,
            profile_deadline_factor: Some(8.0),
            ..RuntimeConfig::default()
        },
    );
    rt.add_kernels(
        "triple",
        [
            writer("a-slow", 12),
            writer("b-mid", 8),
            writer("c-fast", 4),
        ],
    );
    rt
}

type FaultOutcome = (
    Result<LaunchReport, String>,
    Vec<u32>,
    Vec<(VariantId, dysel::core::QuarantineReason)>,
);

fn fault_launch(
    plan: Option<FaultPlan>,
    mode: ProfilingMode,
    orch: Orchestration,
    path: PricingPath,
) -> FaultOutcome {
    let _guard = path_lock();
    set_pricing_path(Some(path));
    let mut rt = fault_runtime(plan);
    let mut args = fault_args();
    let opts = LaunchOptions::new()
        .with_mode(mode)
        .with_orchestration(orch);
    let result = rt
        .launch("triple", &mut args, N, &opts)
        .map_err(|e: DyselError| e.to_string());
    set_pricing_path(None);
    let bits = args.f32(0).unwrap().iter().map(|v| v.to_bits()).collect();
    (result, bits, rt.quarantined("triple").to_vec())
}

#[test]
fn pricing_diff_fault_matrix() {
    let cases: &[(&str, FaultKind)] = &[
        ("c-fast", FaultKind::LaunchError),
        ("a-slow", FaultKind::LaunchError),
        ("b-mid", FaultKind::LaunchError),
        ("c-fast", FaultKind::WrongOutput),
        ("a-slow", FaultKind::WrongOutput),
        ("b-mid", FaultKind::WrongOutput),
        ("c-fast", FaultKind::Poison),
        // The hang blows the x8 profiling deadline: the discard point (and
        // the preempted-cycle watermark in the report) is priced-cycle
        // accurate, so this is the case a pricing drift would flip first.
        ("b-mid", FaultKind::Hang(64)),
        ("c-fast", FaultKind::Hang(64)),
    ];
    for mode in [
        ProfilingMode::FullyProductive,
        ProfilingMode::HybridPartial,
        ProfilingMode::SwapPartial,
    ] {
        for orch in [Orchestration::Sync, Orchestration::Async] {
            // Healthy run first, then every fault class.
            let scalar = fault_launch(None, mode, orch, PricingPath::Scalar);
            let batched = fault_launch(None, mode, orch, PricingPath::Batched);
            assert_eq!(scalar, batched, "{mode} {orch} healthy: paths diverged");
            for &(victim, kind) in cases {
                let plan = || Some(FaultPlan::new(7).with(FaultRule::new(victim, kind)));
                let scalar = fault_launch(plan(), mode, orch, PricingPath::Scalar);
                let batched = fault_launch(plan(), mode, orch, PricingPath::Batched);
                assert_eq!(
                    scalar, batched,
                    "{mode} {orch} {victim}={kind}: paths diverged"
                );
                assert!(
                    !scalar.2.is_empty(),
                    "{mode} {orch} {victim}={kind}: plan inert, diff proves nothing"
                );
            }
        }
    }
}
