//! End-to-end integration: real workloads, real devices, full DySel runs.
//!
//! Sizes are kept modest so the suite stays quick in debug builds; the
//! benchmark harness (`dysel-bench`) runs the paper-scale configurations.

use dysel::baselines::exhaustive_sweep;
use dysel::core::{LaunchOptions, Runtime, RuntimeConfig};
use dysel::device::{CpuConfig, CpuDevice, Device, GpuConfig, GpuDevice};
use dysel::kernel::{Orchestration, ProfilingMode};
use dysel::workloads::{
    histogram, kmeans, particlefilter, sgemm, spmv_csr, stencil, CsrMatrix, Target, Workload,
};

fn cpu() -> Box<dyn Device> {
    Box::new(CpuDevice::new(CpuConfig::noiseless()))
}

fn gpu() -> Box<dyn Device> {
    Box::new(GpuDevice::new(GpuConfig::kepler_k20c().noiseless()))
}

/// Config with a low profiling threshold so small test workloads profile.
fn test_config() -> RuntimeConfig {
    RuntimeConfig {
        profile_threshold_groups: 16,
        ..RuntimeConfig::default()
    }
}

fn run_dysel(
    w: &Workload,
    target: Target,
    device: Box<dyn Device>,
    opts: &LaunchOptions,
) -> dysel::core::LaunchReport {
    let mut rt = Runtime::with_config(device, test_config());
    rt.add_kernels(&w.signature, w.variants(target).to_vec());
    let mut args = w.fresh_args();
    let report = rt
        .launch(&w.signature, &mut args, w.total_units, opts)
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    w.verify(&args)
        .unwrap_or_else(|e| panic!("{} output: {e}", w.name));
    report
}

fn small_suite() -> Vec<Workload> {
    vec![
        sgemm::schedules_workload(64, 7),
        sgemm::mixed_workload(64, 7),
        spmv_csr::case4_workload("spmv-rnd", &CsrMatrix::random(2048, 2048, 0.01, 7), 7),
        spmv_csr::case4_workload("spmv-diag", &CsrMatrix::diagonal(4096), 7),
        stencil::workload(32, 7),
        kmeans::workload(
            kmeans::Shape {
                n: 2048,
                d: 8,
                k: 4,
            },
            7,
        ),
        particlefilter::workload(
            particlefilter::Shape {
                particles: 2048,
                window: 16,
                frame: 1 << 14,
            },
            7,
        ),
        histogram::workload(
            64 * histogram::ELEMS_PER_UNIT,
            histogram::Distribution::Skewed,
            7,
        ),
    ]
}

#[test]
fn every_workload_runs_verified_on_cpu() {
    for w in small_suite() {
        let report = run_dysel(&w, Target::Cpu, cpu(), &LaunchOptions::new());
        assert!(report.total_time.0 > 0, "{}", w.name);
    }
}

#[test]
fn every_workload_runs_verified_on_gpu() {
    for w in small_suite() {
        let report = run_dysel(&w, Target::Gpu, gpu(), &LaunchOptions::new());
        assert!(report.total_time.0 > 0, "{}", w.name);
    }
}

#[test]
fn sync_and_async_agree_on_selection_without_noise() {
    for w in small_suite() {
        let sync = run_dysel(
            &w,
            Target::Cpu,
            cpu(),
            &LaunchOptions::new().with_orchestration(Orchestration::Sync),
        );
        let asynch = run_dysel(
            &w,
            Target::Cpu,
            cpu(),
            &LaunchOptions::new().with_orchestration(Orchestration::Async),
        );
        if sync.profiled() && asynch.profiled() {
            assert_eq!(sync.selected, asynch.selected, "{}", w.name);
        }
    }
}

/// The full mode x orchestration matrix over three structurally different
/// workloads: a regular kernel (sgemm), an irregular one (spmv-csr) and an
/// atomics-based accumulator (histogram). Every combination must produce
/// the exact reference output (`Workload::verify` checks against the serial
/// golden computation) and, with zero noise, select the same variant the
/// offline exhaustive sweep crowns. The sgemm edge is 128: at smaller
/// sizes the profiling slice's cache behaviour genuinely diverges from the
/// whole workload's and the close loop-order schedules flip.
#[test]
fn mode_orchestration_matrix_is_correct_and_selects_the_sweep_winner() {
    let workloads = vec![
        sgemm::schedules_workload(128, 7),
        spmv_csr::case4_workload("spmv", &CsrMatrix::random(2048, 2048, 0.01, 7), 7),
        histogram::workload(
            64 * histogram::ELEMS_PER_UNIT,
            histogram::Distribution::Skewed,
            7,
        ),
    ];
    for w in &workloads {
        let winner = exhaustive_sweep(w, Target::Cpu, cpu).best().0;
        for mode in [
            ProfilingMode::FullyProductive,
            ProfilingMode::HybridPartial,
            ProfilingMode::SwapPartial,
        ] {
            for orch in [Orchestration::Sync, Orchestration::Async] {
                let opts = LaunchOptions::new()
                    .with_mode(mode)
                    .with_orchestration(orch);
                let report = run_dysel(w, Target::Cpu, cpu(), &opts);
                let label = format!("{} / {mode} / {orch}", w.name);
                assert!(report.profiled(), "{label}: profiling must run");
                if mode == ProfilingMode::SwapPartial {
                    // Table 1: swap-based profiling forces the sync flow.
                    assert_eq!(report.orchestration, Orchestration::Sync, "{label}");
                    assert_eq!(report.eager_chunks, 0, "{label}");
                } else {
                    assert_eq!(report.orchestration, orch, "{label}");
                }
                assert_eq!(
                    report.selected, winner,
                    "{label}: picked {} against the sweep",
                    report.selected_name
                );
            }
        }
    }
}

#[test]
fn dysel_stays_well_under_the_worst_variant() {
    // The headline property, on the input-sensitive workload: DySel lands
    // near the oracle while the worst pure variant is far away.
    let w = spmv_csr::case4_workload("spmv-diag", &CsrMatrix::diagonal(16384), 7);
    for (target, factory) in [
        (Target::Cpu, cpu as fn() -> _),
        (Target::Gpu, gpu as fn() -> _),
    ] {
        let sweep = exhaustive_sweep(&w, target, factory);
        let report = run_dysel(&w, target, factory(), &LaunchOptions::new());
        let rel = report.total_time.ratio_over(sweep.best().1);
        assert!(
            rel < 1.0 + (sweep.spread() - 1.0) * 0.25,
            "{target}: DySel {rel:.3} vs spread {:.3}",
            sweep.spread()
        );
    }
}

#[test]
fn input_flips_the_selection() {
    // The Case IV behaviour end-to-end: the same pool picks differently on
    // different inputs.
    let random = spmv_csr::case4_workload("spmv", &CsrMatrix::random(8192, 8192, 0.01, 7), 7);
    let diag = spmv_csr::case4_workload("spmv", &CsrMatrix::diagonal(1 << 18), 7);
    let pick_random = run_dysel(&random, Target::Gpu, gpu(), &LaunchOptions::new());
    let pick_diag = run_dysel(&diag, Target::Gpu, gpu(), &LaunchOptions::new());
    assert_eq!(pick_random.selected_name, "vector");
    assert_eq!(pick_diag.selected_name, "scalar");
}

#[test]
fn histogram_profiles_in_swap_mode_by_inference() {
    let w = histogram::workload(
        64 * histogram::ELEMS_PER_UNIT,
        histogram::Distribution::Uniform,
        7,
    );
    let report = run_dysel(&w, Target::Gpu, gpu(), &LaunchOptions::new());
    assert_eq!(report.mode, Some(dysel::kernel::ProfilingMode::SwapPartial));
    assert_eq!(report.orchestration, Orchestration::Sync);
}

#[test]
fn regular_workloads_profile_fully_productively() {
    let w = sgemm::schedules_workload(64, 7);
    let report = run_dysel(&w, Target::Cpu, cpu(), &LaunchOptions::new());
    assert_eq!(
        report.mode,
        Some(dysel::kernel::ProfilingMode::FullyProductive)
    );
    assert_eq!(report.wasted_units, 0);
    assert_eq!(report.extra_space_bytes, 0);
}

#[test]
fn irregular_workloads_profile_hybrid() {
    let w = spmv_csr::case4_workload("spmv", &CsrMatrix::random(4096, 4096, 0.01, 7), 7);
    let report = run_dysel(&w, Target::Gpu, gpu(), &LaunchOptions::new());
    assert_eq!(
        report.mode,
        Some(dysel::kernel::ProfilingMode::HybridPartial)
    );
    assert!(report.extra_space_bytes > 0);
}
