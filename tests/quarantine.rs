//! Quarantine life cycle: deadline cutoff, transient-retry recovery, pool
//! exhaustion, the selection-cache interaction, and `Runtime::reset`.

use dysel::core::{
    DyselError, LaunchOptions, LaunchReport, QuarantineReason, Runtime, RuntimeConfig, SkipReason,
};
use dysel::device::{CpuConfig, CpuDevice, Device, FaultKind, FaultPlan, FaultRule};
use dysel::kernel::{
    Args, Buffer, KernelIr, Orchestration, ProfilingMode, Space, Variant, VariantId, VariantMeta,
};

const N: u64 = 4096;

/// `out[u] = 2*in[u] + 1`, priced at `cost` vector iterations per unit.
fn writer(name: &str, cost: u64) -> Variant {
    Variant::from_fn(
        VariantMeta::new(name, KernelIr::regular(vec![0])),
        move |ctx, args| {
            for u in ctx.units().iter() {
                let x = args.f32(1).unwrap()[u as usize];
                args.f32_mut(0).unwrap()[u as usize] = 2.0 * x + 1.0;
                ctx.vector_compute(cost, 8, 8, 1);
            }
        },
    )
}

fn fresh_args() -> Args {
    let mut a = Args::new();
    a.push(Buffer::f32("out", vec![0.0; N as usize], Space::Global));
    a.push(Buffer::f32(
        "in",
        (0..N).map(|i| i as f32).collect(),
        Space::Global,
    ));
    a
}

fn runtime(plan: Option<FaultPlan>, config: RuntimeConfig) -> Runtime {
    let mut dev = CpuDevice::new(CpuConfig::noiseless());
    dev.set_fault_plan(plan);
    let mut rt = Runtime::with_config(Box::new(dev), config);
    rt.add_kernels(
        "triple",
        [
            writer("a-slow", 12),
            writer("b-mid", 8),
            writer("c-fast", 4),
        ],
    );
    rt
}

fn config() -> RuntimeConfig {
    RuntimeConfig {
        profile_threshold_groups: 16,
        ..RuntimeConfig::default()
    }
}

fn fp_sync(rt: &mut Runtime, args: &mut Args) -> Result<LaunchReport, DyselError> {
    let opts = LaunchOptions::new()
        .with_mode(ProfilingMode::FullyProductive)
        .with_orchestration(Orchestration::Sync);
    rt.launch("triple", args, N, &opts)
}

/// The deadline is a cutoff, not just a discard: with the hang guard on,
/// the launch stops waiting for the hung variant, so it completes earlier
/// (in virtual time) than the same faulted launch without a deadline.
#[test]
fn deadline_cuts_the_wait_for_a_hung_variant() {
    let plan = || Some(FaultPlan::new(3).with(FaultRule::new("b-mid", FaultKind::Hang(64))));
    let mut guarded = runtime(
        plan(),
        RuntimeConfig {
            profile_deadline_factor: Some(8.0),
            ..config()
        },
    );
    let mut patient = runtime(plan(), config());
    let g = fp_sync(&mut guarded, &mut fresh_args()).unwrap();
    let p = fp_sync(&mut patient, &mut fresh_args()).unwrap();
    assert_eq!(g.faults.deadline_discards, 1);
    assert_eq!(
        guarded.quarantined("triple"),
        &[(VariantId(1), QuarantineReason::DeadlineExceeded)]
    );
    // Without a deadline the paper's runtime waits for every measurement.
    assert_eq!(p.faults.deadline_discards, 0);
    assert!(patient.quarantined("triple").is_empty());
    // Both still dodge the hang in selection; the guarded run is faster.
    assert_ne!(g.selected, VariantId(1));
    assert_ne!(p.selected, VariantId(1));
    assert!(
        g.total_time < p.total_time,
        "deadline run {} !< patient run {}",
        g.total_time,
        p.total_time
    );
}

/// A transient launch error within the retry budget recovers in place:
/// no quarantine, correct output, and an exact retry ledger.
#[test]
fn transient_error_is_retried_not_quarantined() {
    let plan =
        FaultPlan::new(5).with(FaultRule::new("c-fast", FaultKind::LaunchError).window(0, 1));
    let mut rt = runtime(Some(plan), config());
    let mut args = fresh_args();
    let report = fp_sync(&mut rt, &mut args).unwrap();
    assert_eq!(report.faults.launch_errors, 1);
    assert_eq!(report.faults.retries, 1);
    assert!(report.faults.quarantined.is_empty());
    assert!(rt.quarantined("triple").is_empty());
    // The recovered variant is still eligible — and still wins.
    assert_eq!(report.selected, VariantId(2));
    for (i, y) in args.f32(0).unwrap().iter().enumerate() {
        assert_eq!(*y, 2.0 * i as f32 + 1.0);
    }
}

/// Every variant failing permanently yields a typed error — no panic, the
/// user buffers bit-untouched — and later launches of the signature fail
/// fast without issuing device work.
#[test]
fn exhausted_pool_is_a_typed_error_with_untouched_buffers() {
    let plan = FaultPlan::new(9)
        .with(FaultRule::new("a-slow", FaultKind::LaunchError))
        .with(FaultRule::new("b-mid", FaultKind::LaunchError))
        .with(FaultRule::new("c-fast", FaultKind::LaunchError));
    let mut rt = runtime(Some(plan), config());
    let mut args = fresh_args();
    let sentinel: Vec<u32> = args.f32(0).unwrap().iter().map(|v| v.to_bits()).collect();
    let err = fp_sync(&mut rt, &mut args).unwrap_err();
    assert_eq!(
        err,
        DyselError::AllVariantsFaulted {
            signature: "triple".into(),
            quarantined: 3,
        }
    );
    let after: Vec<u32> = args.f32(0).unwrap().iter().map(|v| v.to_bits()).collect();
    assert_eq!(after, sentinel, "user buffers were modified on error");
    assert_eq!(rt.quarantined("triple").len(), 3);
    assert_eq!(rt.stats().quarantined_variants(), 3);

    // The second launch fails before recording or launching anything.
    let launches_before = rt.stats().launches();
    let errors_before = rt.stats().launch_errors();
    let err2 = fp_sync(&mut rt, &mut args).unwrap_err();
    assert!(matches!(err2, DyselError::AllVariantsFaulted { .. }));
    assert_eq!(rt.stats().launches(), launches_before);
    assert_eq!(rt.stats().launch_errors(), errors_before);
}

/// A cached selection that later lands in quarantine must not be replayed:
/// the skip path falls back to a surviving variant, in `profile_once` mode
/// as well as on later cache hits.
#[test]
fn quarantined_cached_selection_falls_back() {
    // c-fast wins launch 1 (launch index 0: profile, 1: final batch), then
    // fails permanently from its 3rd launch on.
    let plan = FaultPlan::new(11)
        .with(FaultRule::new("c-fast", FaultKind::LaunchError).window(2, u64::MAX));
    let mut rt = runtime(
        Some(plan),
        RuntimeConfig {
            profile_once_per_signature: true,
            ..config()
        },
    );
    let r1 = fp_sync(&mut rt, &mut fresh_args()).unwrap();
    assert_eq!(r1.selected, VariantId(2));
    assert_eq!(rt.cached_selection("triple"), Some(VariantId(2)));

    // Steady state: the cached winner's batch launch now fails for good;
    // the run must quarantine it and finish with a survivor.
    let mut args = fresh_args();
    let r2 = fp_sync(&mut rt, &mut args).unwrap();
    assert_eq!(r2.skipped, Some(SkipReason::CachedSelection));
    assert_ne!(r2.selected, VariantId(2));
    assert_eq!(
        rt.quarantined("triple"),
        &[(VariantId(2), QuarantineReason::LaunchFailed)]
    );
    for (i, y) in args.f32(0).unwrap().iter().enumerate() {
        assert_eq!(*y, 2.0 * i as f32 + 1.0);
    }

    // Later cache hits sanitize the stale cached id without re-launching
    // the quarantined variant.
    let r3 = fp_sync(&mut rt, &mut fresh_args()).unwrap();
    assert_eq!(r3.skipped, Some(SkipReason::CachedSelection));
    assert_ne!(r3.selected, VariantId(2));
    assert!(r3.faults.is_clean());
}

/// `Runtime::reset` clears quarantine state, statistics, the recorded
/// timeline and the sandbox-pool counters — and a reset device replays
/// the same fault sequence, reproducing the same quarantine.
#[test]
fn reset_clears_quarantine_stats_and_sandbox_counters() {
    let plan = FaultPlan::new(13).with(FaultRule::new("b-mid", FaultKind::LaunchError));
    let mut rt = runtime(Some(plan), config());
    let opts = LaunchOptions::new()
        .with_mode(ProfilingMode::SwapPartial)
        .with_orchestration(Orchestration::Sync);
    let r1 = rt.launch("triple", &mut fresh_args(), N, &opts).unwrap();
    assert!(!r1.faults.is_clean());
    assert!(!rt.quarantined("triple").is_empty());
    assert!(rt.stats().launches() > 0);
    assert!(rt.sandbox_stats().0 > 0, "swap mode leases sandboxes");
    assert!(!rt.last_timeline().entries().is_empty());

    rt.reset();
    assert!(rt.quarantined("triple").is_empty());
    assert_eq!(rt.cached_selection("triple"), None);
    assert_eq!(rt.stats().launches(), 0);
    assert_eq!(rt.stats().launch_errors(), 0);
    assert_eq!(rt.stats().quarantined_variants(), 0);
    assert_eq!(rt.sandbox_stats(), (0, 0));
    assert!(rt.last_timeline().entries().is_empty());

    // Device reset rewound the fault plan: the rerun replays identically.
    let r2 = rt.launch("triple", &mut fresh_args(), N, &opts).unwrap();
    assert_eq!(r1, r2);
    assert_eq!(
        rt.quarantined("triple"),
        &[(VariantId(1), QuarantineReason::LaunchFailed)]
    );
}
