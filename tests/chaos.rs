//! Seeded chaos conformance suite for the service's fault containment
//! (DESIGN.md §4.17).
//!
//! A deterministic [`ChaosPlan`] injects lane panics, worker kills and
//! journal kill-points into a multi-client [`LaunchService`] run, and the
//! suite pins the containment contract:
//!
//! * **no hung tickets** — every submission resolves (typed success or
//!   typed failure) within a generous bound, at 1, 2 and 8 clients;
//! * **blast-radius** — typed failures only ever name streams the plan
//!   actually touches; every *surviving* stream's selection digest is
//!   bit-identical to a serial replay on a plain single-owner `Runtime`
//!   (and therefore identical across client counts);
//! * **crash recovery** — a journal kill-point mid-run loses only the
//!   un-journaled suffix: reopening the state path recovers exactly the
//!   journaled prefix of the pre-crash cache snapshot, a torn journal
//!   tail is tolerated (typed, never a panic), and a corrupt journal
//!   header degrades to a typed cold start with the service still live.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use dysel::core::{
    ChaosAction, ChaosPlan, ChaosRule, DyselError, LaunchOptions, LaunchService, Runtime,
    RuntimeConfig, RuntimeState, ServiceConfig, SubmitError, TenantId,
};
use dysel::device::{CpuConfig, CpuDevice, Device};
use dysel::kernel::{Args, Buffer, KernelIr, Space, Variant, VariantMeta};
use dysel::obs::names;

const TENANTS: u32 = 2;
const ROUNDS: usize = 3;
const UNITS: u64 = 64;
/// Hung-ticket bound: generous enough for a loaded CI host, far below
/// "forever". Every wait in the suite goes through this.
const WAIT: Duration = Duration::from_secs(60);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fold(digest: &mut u64, bytes: &[u8]) {
    for b in bytes.iter().chain(&[0u8]) {
        *digest ^= u64::from(*b);
        *digest = digest.wrapping_mul(FNV_PRIME);
    }
}

/// One inline functional worker: panics inside a kernel surface in the
/// launching (shard worker) thread, where lane supervision catches them.
fn device() -> Box<dyn Device> {
    Box::new(CpuDevice::new(CpuConfig {
        threads: 1,
        ..CpuConfig::noiseless()
    }))
}

fn writer(name: &str, cost: u64) -> Variant {
    Variant::from_fn(
        VariantMeta::new(name, KernelIr::regular(vec![0])),
        move |ctx, args| {
            for u in ctx.units().iter() {
                args.f32_mut(0).unwrap()[u as usize] = u as f32 + 1.0;
                ctx.vector_compute(cost, 8, 8, 1);
            }
        },
    )
}

fn fresh_args() -> Args {
    let mut args = Args::new();
    args.push(Buffer::f32("out", vec![0.0; UNITS as usize], Space::Global));
    args
}

/// Six two-variant streams; micro-profiling selects "fast" on each.
fn signatures() -> Vec<String> {
    (0..6).map(|i| format!("s{i}")).collect()
}

fn variants() -> Vec<Variant> {
    vec![writer("slow", 9), writer("fast", 3)]
}

/// The suite's canonical plan: the second launch of every tenant's `s1`
/// stream panics in-kernel; the first launch of every tenant's `s3`
/// stream kills its shard worker outright.
fn plan() -> ChaosPlan {
    ChaosPlan::new(11)
        .with(ChaosRule::new("s1", ChaosAction::Panic).window(1, 1))
        .with(ChaosRule::new("s3", ChaosAction::Kill).window(0, 1))
}

/// Serial ground truth: each stream replayed on a plain single-owner
/// runtime, digest folded exactly like the service's per-stream digest.
fn serial_baseline() -> BTreeMap<(u32, String), u64> {
    let opts = LaunchOptions::new();
    let mut out = BTreeMap::new();
    for tenant in 0..TENANTS {
        for sig in signatures() {
            let mut rt = Runtime::with_config(
                device(),
                RuntimeConfig {
                    tenant: TenantId(tenant),
                    private_addrs: true,
                    ..RuntimeConfig::default()
                },
            );
            rt.add_kernels(&sig, variants());
            let mut digest = FNV_OFFSET;
            for _ in 0..ROUNDS {
                let mut args = fresh_args();
                let report = rt.launch(&sig, &mut args, UNITS, &opts).expect("baseline");
                fold(&mut digest, report.signature.as_bytes());
                fold(&mut digest, report.selected_name.as_bytes());
            }
            out.insert((tenant, sig), digest);
        }
    }
    out
}

/// What one chaotic service run produced: per-stream digests for streams
/// that completed every round cleanly, plus every typed failure observed
/// (launch errors and fail-fast rejections), keyed by signature.
struct ChaosRun {
    digests: BTreeMap<(u32, String), u64>,
    failures: Vec<(u32, String, String)>,
    service: LaunchService,
}

fn chaos_run(clients: usize, chaos: Option<ChaosPlan>) -> ChaosRun {
    let service = Arc::new(LaunchService::new(
        Arc::new(device),
        ServiceConfig {
            shards: 2,
            queue_capacity: 4,
            observe: true,
            restart_backoff: Duration::from_millis(1),
            chaos,
            ..ServiceConfig::default()
        },
    ));
    let sigs = signatures();
    for sig in &sigs {
        service.register(sig, variants());
    }
    let streams: Vec<(TenantId, usize)> = (0..TENANTS)
        .flat_map(|t| (0..sigs.len()).map(move |si| (TenantId(t), si)))
        .collect();
    let failures: std::sync::Mutex<Vec<(u32, String, String)>> = std::sync::Mutex::new(Vec::new());
    let clean: std::sync::Mutex<BTreeMap<(u32, String), bool>> =
        std::sync::Mutex::new(BTreeMap::new());
    std::thread::scope(|scope| {
        for client in 0..clients {
            let service = service.clone();
            let (sigs, streams, failures, clean) = (&sigs, &streams, &failures, &clean);
            scope.spawn(move || {
                let opts = LaunchOptions::new();
                for (tenant, si) in streams
                    .iter()
                    .skip(client)
                    .step_by(clients)
                    .copied()
                    .collect::<Vec<_>>()
                {
                    let sig = &sigs[si];
                    let mut all_ok = true;
                    'rounds: for _round in 0..ROUNDS {
                        let mut args = fresh_args();
                        let outcome = loop {
                            match service.submit(tenant, sig, args, UNITS, &opts) {
                                Ok(ticket) => match ticket.wait_timeout(WAIT) {
                                    Ok(outcome) => break outcome,
                                    Err(_) => panic!("hung ticket on stream {tenant:?}/{sig}"),
                                },
                                Err(SubmitError::Busy { args: back, .. }) => {
                                    args = back;
                                    std::thread::yield_now();
                                }
                                Err(failed) => {
                                    // Fail-fast rejection: typed, buffers
                                    // back, the round is forfeit.
                                    failures.lock().unwrap().push((
                                        tenant.0,
                                        sig.clone(),
                                        failed.to_string(),
                                    ));
                                    drop(failed.into_args());
                                    all_ok = false;
                                    continue 'rounds;
                                }
                            }
                        };
                        let (out, result) = outcome;
                        match result {
                            Ok(_) => {
                                assert_eq!(out.f32(0).unwrap()[0], 1.0, "output survived intact");
                            }
                            Err(e) => {
                                assert!(
                                    matches!(
                                        e,
                                        DyselError::LanePanicked { .. }
                                            | DyselError::WorkerDied { .. }
                                            | DyselError::DeadlineExpired { .. }
                                            | DyselError::CircuitOpen { .. }
                                    ),
                                    "untyped failure: {e}"
                                );
                                failures.lock().unwrap().push((
                                    tenant.0,
                                    sig.clone(),
                                    e.to_string(),
                                ));
                                all_ok = false;
                            }
                        }
                    }
                    clean
                        .lock()
                        .unwrap()
                        .insert((tenant.0, sig.clone()), all_ok);
                }
            });
        }
    });
    let mut digests = BTreeMap::new();
    for ((tenant, sig), all_ok) in clean.into_inner().unwrap() {
        if all_ok {
            let digest = service
                .stream_digest(TenantId(tenant), &sig)
                .expect("clean stream launched");
            digests.insert((tenant, sig), digest);
        }
    }
    let service = Arc::into_inner(service).expect("clients joined");
    ChaosRun {
        digests,
        failures: failures.into_inner().unwrap(),
        service,
    }
}

#[test]
fn surviving_streams_are_bit_identical_to_serial_replay_at_all_client_counts() {
    let baseline = serial_baseline();
    let plan = plan();
    let touched: Vec<String> = plan
        .touched_signatures()
        .into_iter()
        .map(str::to_owned)
        .collect();
    for clients in [1, 2, 8] {
        let run = chaos_run(clients, Some(plan.clone()));
        // Blast radius: every typed failure names a stream the plan
        // touches — chaos never leaks across lanes.
        for (tenant, sig, detail) in &run.failures {
            assert!(
                touched.contains(sig),
                "{clients} clients: untouched stream ({tenant}, {sig}) failed: {detail}"
            );
        }
        assert!(
            !run.failures.is_empty(),
            "{clients} clients: the plan injected nothing"
        );
        // Survivors: bit-identical to serial replay, so also identical
        // across client counts.
        for ((tenant, sig), digest) in &run.digests {
            if touched.contains(sig) {
                continue;
            }
            assert_eq!(
                digest,
                &baseline[&(*tenant, sig.clone())],
                "{clients} clients: surviving stream ({tenant}, {sig}) diverged from serial replay"
            );
        }
        // Every untouched stream must in fact have survived.
        let survivors = run
            .digests
            .keys()
            .filter(|(_, sig)| !touched.contains(sig))
            .count();
        assert_eq!(
            survivors as u32,
            TENANTS * (signatures().len() as u32 - touched.len() as u32),
            "{clients} clients: an untouched stream failed to complete"
        );
        // Containment bookkeeping: one panic and one kill per tenant.
        let metrics = run.service.metrics();
        assert_eq!(
            metrics.counter(names::SERVICE_LANE_PANICS),
            u64::from(TENANTS),
            "{clients} clients: lane panic count"
        );
        assert!(
            metrics.counter(names::SERVICE_WORKER_RESTARTS) >= 1,
            "{clients} clients: the supervisor restarted no worker"
        );
        assert!(
            metrics.counter(names::SERVICE_BREAKER_OPENS) >= u64::from(TENANTS),
            "{clients} clients: panics did not trip breakers"
        );
    }
}

#[test]
fn queue_storm_under_probabilistic_chaos_never_hangs() {
    // One shard, capacity one, eight clients hammering six streams:
    // heavy Busy backpressure plus coin-flip panics. The invariant is
    // pure liveness — every ticket resolves, every failure is typed.
    let plan =
        ChaosPlan::new(3).with(ChaosRule::new("s0", ChaosAction::Panic).with_probability(0.4));
    let service = Arc::new(LaunchService::new(
        Arc::new(device),
        ServiceConfig {
            shards: 1,
            queue_capacity: 1,
            restart_backoff: Duration::from_millis(1),
            chaos: Some(plan),
            ..ServiceConfig::default()
        },
    ));
    let sigs = signatures();
    for sig in &sigs {
        service.register(sig, variants());
    }
    let busy = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|scope| {
        for client in 0..8usize {
            let service = service.clone();
            let (sigs, busy) = (&sigs, &busy);
            scope.spawn(move || {
                let opts = LaunchOptions::new();
                for round in 0..ROUNDS {
                    let sig = &sigs[(client + round) % sigs.len()];
                    let mut args = fresh_args();
                    loop {
                        match service.submit(TenantId(client as u32), sig, args, UNITS, &opts) {
                            Ok(ticket) => {
                                assert!(
                                    ticket.wait_timeout(WAIT).is_ok(),
                                    "hung ticket in queue storm"
                                );
                                break;
                            }
                            Err(SubmitError::Busy { args: back, .. }) => {
                                busy.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                args = back;
                                std::thread::yield_now();
                            }
                            Err(failed) => {
                                // Open breaker: typed fail-fast, done.
                                drop(failed.into_args());
                                break;
                            }
                        }
                    }
                }
            });
        }
    });
    assert!(
        busy.into_inner() > 0,
        "the storm never actually hit backpressure"
    );
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dysel-chaos-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// `state` restricted to the selections present in `prefix` — used to
/// assert "recovered == journaled prefix of the pre-crash snapshot".
fn assert_selection_prefix(recovered: &RuntimeState, pre_crash: &RuntimeState) {
    for (sig, variant) in &recovered.selections {
        assert_eq!(
            pre_crash.selections.get(sig),
            Some(variant),
            "recovered tenant-0 selection {sig} diverged from the pre-crash snapshot"
        );
    }
    for (tenant, state) in &recovered.tenants {
        let pre = pre_crash
            .tenants
            .get(tenant)
            .expect("recovered tenant existed pre-crash");
        for (sig, variant) in &state.selections {
            assert_eq!(
                pre.selections.get(sig),
                Some(variant),
                "recovered tenant-{tenant} selection {sig} diverged from the pre-crash snapshot"
            );
        }
    }
}

fn persistent_service(state: &std::path::Path, chaos: Option<ChaosPlan>) -> LaunchService {
    let service = LaunchService::with_factory(
        device,
        ServiceConfig {
            shards: 1,
            state_path: Some(state.to_path_buf()),
            chaos,
            ..ServiceConfig::default()
        },
    );
    for sig in signatures() {
        service.register(sig, variants());
    }
    service
}

fn launch_all(service: &LaunchService) {
    let opts = LaunchOptions::new();
    for tenant in 0..TENANTS {
        for sig in signatures() {
            let ticket = service
                .submit(TenantId(tenant), &sig, fresh_args(), UNITS, &opts)
                .expect("admitted");
            let (_, result) = ticket.wait_timeout(WAIT).expect("resolved");
            result.expect("healthy launch");
        }
    }
}

#[test]
fn journal_kill_point_recovers_exactly_the_journaled_prefix() {
    let dir = temp_dir("kill-point");
    let state = dir.join("state.bin");
    // Run 1: the journal dies after 4 appends; 12 streams select, so the
    // tail is lost. Unclean stop (no save_state).
    let pre_crash = {
        let service = persistent_service(&state, Some(ChaosPlan::new(1).with_journal_kill(4)));
        launch_all(&service);
        service.export_state()
    };
    assert!(
        !state.exists(),
        "no checkpoint must exist before the first save/compaction"
    );
    // Run 2: recovery replays exactly the 4 journaled records — a strict,
    // consistent prefix of the pre-crash snapshot.
    let recovered = {
        let service = persistent_service(&state, None);
        let info = service.recovery().expect("state path configured");
        assert!(!info.torn, "kill-point loss is silent, not torn");
        assert_eq!(info.replayed, 4, "exactly the journaled prefix");
        service.export_state()
    };
    let recovered_count = recovered.selections.len()
        + recovered
            .tenants
            .values()
            .map(|t| t.selections.len())
            .sum::<usize>();
    assert_eq!(recovered_count, 4, "one selection per journaled record");
    assert_selection_prefix(&recovered, &pre_crash);
    // Control: without the kill-point the full snapshot survives a crash.
    let state2 = dir.join("state2.bin");
    let pre_crash = {
        let service = persistent_service(&state2, None);
        launch_all(&service);
        service.export_state()
    };
    let service = persistent_service(&state2, None);
    assert_eq!(
        service.recovery(),
        Some(dysel::core::RecoveryInfo {
            replayed: u64::from(TENANTS) * signatures().len() as u64,
            torn: false,
        })
    );
    assert_eq!(service.export_state(), pre_crash, "lossless crash recovery");
    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_journal_tail_is_tolerated_and_corrupt_header_is_typed_cold_start() {
    let dir = temp_dir("torn-tail");
    let state = dir.join("state.bin");
    let pre_crash = {
        let service = persistent_service(&state, None);
        launch_all(&service);
        service.export_state()
    };
    let journal = dysel::core::journal_path(&state);
    // Tear the last record mid-frame.
    let bytes = std::fs::read(&journal).expect("journal written");
    assert!(bytes.len() > 16, "journal must hold records to tear");
    std::fs::write(&journal, &bytes[..bytes.len() - 3]).expect("tear");
    {
        let service = persistent_service(&state, None);
        let info = service.recovery().expect("state path configured");
        assert!(info.torn, "the torn tail must be reported");
        assert!(info.replayed > 0, "the intact prefix must replay");
        assert!(
            service.state_load_error().is_none(),
            "a torn tail is tolerated, not an error"
        );
        assert_selection_prefix(&service.export_state(), &pre_crash);
    }
    // Corrupt journal header on a fresh state path: typed cold start,
    // service still serves launches.
    let corrupt_state = dir.join("corrupt.bin");
    std::fs::write(dysel::core::journal_path(&corrupt_state), b"garbage-header")
        .expect("corrupt journal");
    let service = persistent_service(&corrupt_state, None);
    assert!(
        service.state_load_error().is_some(),
        "a corrupt journal header is a typed load error"
    );
    launch_all(&service);
    assert!(service.launches() > 0, "cold-started service stays live");
    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
}
