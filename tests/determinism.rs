//! Determinism guarantees: identical seeds reproduce identical virtual
//! schedules, measurements and selections — the property that makes every
//! figure in EXPERIMENTS.md regenerate bit-identically.

use dysel::core::{LaunchOptions, LaunchReport, Runtime, RuntimeConfig};
use dysel::device::{CpuConfig, CpuDevice, Device, GpuConfig, GpuDevice};
use dysel::workloads::{spmv_csr, CsrMatrix, Target, Workload};

fn workload() -> Workload {
    spmv_csr::case4_workload("spmv", &CsrMatrix::random(4096, 4096, 0.01, 99), 99)
}

fn run(device: Box<dyn Device>, target: Target) -> (LaunchReport, Vec<u32>) {
    let w = workload();
    let mut rt = Runtime::with_config(
        device,
        RuntimeConfig {
            profile_threshold_groups: 16,
            ..RuntimeConfig::default()
        },
    );
    rt.add_kernels(&w.signature, w.variants(target).to_vec());
    let mut args = w.fresh_args();
    let report = rt
        .launch(&w.signature, &mut args, w.total_units, &LaunchOptions::new())
        .unwrap();
    let bits = args
        .f32(spmv_csr::arg::Y)
        .unwrap()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    (report, bits)
}

/// The determinism contract of the parallel executor: the worker-thread
/// count changes host wall-clock only. Selections, reports (every virtual
/// timestamp and measurement) and output buffers are bit-identical whether
/// the functional execution ran inline or fanned out over 2 or 8 workers.
#[test]
fn worker_thread_count_never_changes_cpu_results() {
    let baseline = run(
        Box::new(CpuDevice::new(CpuConfig {
            threads: 1,
            ..CpuConfig::default()
        })),
        Target::Cpu,
    );
    for threads in [2usize, 8] {
        let (report, bits) = run(
            Box::new(CpuDevice::new(CpuConfig {
                threads,
                ..CpuConfig::default()
            })),
            Target::Cpu,
        );
        assert_eq!(report, baseline.0, "{threads} threads: report diverged");
        assert_eq!(bits, baseline.1, "{threads} threads: output diverged");
    }
}

/// Same contract on the GPU model (SwapPartial inference path included).
#[test]
fn worker_thread_count_never_changes_gpu_results() {
    let baseline = run(
        Box::new(GpuDevice::new(GpuConfig {
            threads: 1,
            ..GpuConfig::kepler_k20c()
        })),
        Target::Gpu,
    );
    for threads in [2usize, 8] {
        let (report, bits) = run(
            Box::new(GpuDevice::new(GpuConfig {
                threads,
                ..GpuConfig::kepler_k20c()
            })),
            Target::Gpu,
        );
        assert_eq!(report, baseline.0, "{threads} threads: report diverged");
        assert_eq!(bits, baseline.1, "{threads} threads: output diverged");
    }
}

#[test]
fn cpu_runs_are_bit_identical() {
    let (r1, o1) = run(Box::new(CpuDevice::new(CpuConfig::default())), Target::Cpu);
    let (r2, o2) = run(Box::new(CpuDevice::new(CpuConfig::default())), Target::Cpu);
    assert_eq!(r1, r2);
    assert_eq!(o1, o2);
}

#[test]
fn gpu_runs_are_bit_identical() {
    let (r1, o1) = run(Box::new(GpuDevice::new(GpuConfig::kepler_k20c())), Target::Gpu);
    let (r2, o2) = run(Box::new(GpuDevice::new(GpuConfig::kepler_k20c())), Target::Gpu);
    assert_eq!(r1, r2);
    assert_eq!(o1, o2);
}

#[test]
fn different_noise_seeds_change_measurements_but_not_output() {
    let seeded = |seed: u64| {
        run(
            Box::new(CpuDevice::new(CpuConfig {
                seed,
                ..CpuConfig::default()
            })),
            Target::Cpu,
        )
    };
    let (r1, o1) = seeded(1);
    let (r2, o2) = seeded(2);
    // Noise changed the measured values...
    assert_ne!(
        r1.measurements.iter().map(|m| m.measured).collect::<Vec<_>>(),
        r2.measurements.iter().map(|m| m.measured).collect::<Vec<_>>()
    );
    // ...but outputs stay exact regardless of what was selected.
    assert_eq!(o1, o2);
}

#[test]
fn device_reset_replays_the_same_schedule() {
    let w = workload();
    let mut rt = Runtime::with_config(
        Box::new(CpuDevice::new(CpuConfig::default())),
        RuntimeConfig {
            profile_threshold_groups: 16,
            ..RuntimeConfig::default()
        },
    );
    rt.add_kernels(&w.signature, w.variants(Target::Cpu).to_vec());
    let mut args = w.fresh_args();
    let r1 = rt
        .launch(&w.signature, &mut args, w.total_units, &LaunchOptions::new())
        .unwrap();
    rt.reset();
    let mut args = w.fresh_args();
    let r2 = rt
        .launch(&w.signature, &mut args, w.total_units, &LaunchOptions::new())
        .unwrap();
    assert_eq!(r1, r2);
}
