//! Determinism guarantees: identical seeds reproduce identical virtual
//! schedules, measurements and selections — the property that makes every
//! figure in EXPERIMENTS.md regenerate bit-identically.

use dysel::core::{LaunchOptions, LaunchReport, Runtime, RuntimeConfig};
use dysel::device::{
    CpuConfig, CpuDevice, Cycles, Device, FaultKind, FaultPlan, FaultRule, GpuConfig, GpuDevice,
};
use dysel::workloads::{spmv_csr, CsrMatrix, Target, Workload};

fn workload() -> Workload {
    spmv_csr::case4_workload("spmv", &CsrMatrix::random(4096, 4096, 0.01, 99), 99)
}

fn run(device: Box<dyn Device>, target: Target) -> (LaunchReport, Vec<u32>) {
    let w = workload();
    let mut rt = Runtime::with_config(
        device,
        RuntimeConfig {
            profile_threshold_groups: 16,
            ..RuntimeConfig::default()
        },
    );
    rt.add_kernels(&w.signature, w.variants(target).to_vec());
    let mut args = w.fresh_args();
    let report = rt
        .launch(
            &w.signature,
            &mut args,
            w.total_units,
            &LaunchOptions::new(),
        )
        .unwrap();
    let bits = args
        .f32(spmv_csr::arg::Y)
        .unwrap()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    (report, bits)
}

/// The determinism contract of the parallel executor: the worker-thread
/// count changes host wall-clock only. Selections, reports (every virtual
/// timestamp and measurement) and output buffers are bit-identical whether
/// the functional execution ran inline or fanned out over 2 or 8 workers.
#[test]
fn worker_thread_count_never_changes_cpu_results() {
    let baseline = run(
        Box::new(CpuDevice::new(CpuConfig {
            threads: 1,
            ..CpuConfig::default()
        })),
        Target::Cpu,
    );
    for threads in [2usize, 8] {
        let (report, bits) = run(
            Box::new(CpuDevice::new(CpuConfig {
                threads,
                ..CpuConfig::default()
            })),
            Target::Cpu,
        );
        assert_eq!(report, baseline.0, "{threads} threads: report diverged");
        assert_eq!(bits, baseline.1, "{threads} threads: output diverged");
    }
}

/// Same contract on the GPU model (SwapPartial inference path included).
#[test]
fn worker_thread_count_never_changes_gpu_results() {
    let baseline = run(
        Box::new(GpuDevice::new(GpuConfig {
            threads: 1,
            ..GpuConfig::kepler_k20c()
        })),
        Target::Gpu,
    );
    for threads in [2usize, 8] {
        let (report, bits) = run(
            Box::new(GpuDevice::new(GpuConfig {
                threads,
                ..GpuConfig::kepler_k20c()
            })),
            Target::Gpu,
        );
        assert_eq!(report, baseline.0, "{threads} threads: report diverged");
        assert_eq!(bits, baseline.1, "{threads} threads: output diverged");
    }
}

#[test]
fn cpu_runs_are_bit_identical() {
    let (r1, o1) = run(Box::new(CpuDevice::new(CpuConfig::default())), Target::Cpu);
    let (r2, o2) = run(Box::new(CpuDevice::new(CpuConfig::default())), Target::Cpu);
    assert_eq!(r1, r2);
    assert_eq!(o1, o2);
}

#[test]
fn gpu_runs_are_bit_identical() {
    let (r1, o1) = run(
        Box::new(GpuDevice::new(GpuConfig::kepler_k20c())),
        Target::Gpu,
    );
    let (r2, o2) = run(
        Box::new(GpuDevice::new(GpuConfig::kepler_k20c())),
        Target::Gpu,
    );
    assert_eq!(r1, r2);
    assert_eq!(o1, o2);
}

#[test]
fn different_noise_seeds_change_measurements_but_not_output() {
    let seeded = |seed: u64| {
        run(
            Box::new(CpuDevice::new(CpuConfig {
                seed,
                ..CpuConfig::default()
            })),
            Target::Cpu,
        )
    };
    let (r1, o1) = seeded(1);
    let (r2, o2) = seeded(2);
    // Noise changed the measured values...
    assert_ne!(
        r1.measurements
            .iter()
            .map(|m| m.measured)
            .collect::<Vec<_>>(),
        r2.measurements
            .iter()
            .map(|m| m.measured)
            .collect::<Vec<_>>()
    );
    // ...but outputs stay exact regardless of what was selected.
    assert_eq!(o1, o2);
}

/// The determinism contract extends to the degradation machinery: with a
/// fault plan active (a hang, a transient launch error and silent
/// corruption on three different variants), retries, deadline discards,
/// quarantine decisions, repairs and the final output are all functions of
/// virtual time and the plan's seed alone — bit-identical whether the
/// functional execution ran inline or over 2 or 8 worker threads.
#[test]
fn worker_thread_count_never_changes_faulted_results() {
    let w = workload();
    let names: Vec<String> = w
        .variants(Target::Cpu)
        .iter()
        .map(|v| v.name().to_owned())
        .collect();
    assert!(names.len() >= 3, "case IV grid has at least 3 CPU variants");
    let plan = || {
        FaultPlan::new(2026)
            .with(FaultRule::new(&names[0], FaultKind::Hang(16)))
            .with(FaultRule::new(&names[1], FaultKind::LaunchError).window(0, 1))
            .with(FaultRule::new(&names[2], FaultKind::WrongOutput))
    };
    let faulted = |threads: usize| {
        let mut dev = CpuDevice::new(CpuConfig {
            threads,
            ..CpuConfig::default()
        });
        dev.set_fault_plan(Some(plan()));
        let mut rt = Runtime::with_config(
            Box::new(dev),
            RuntimeConfig {
                profile_threshold_groups: 16,
                validate_outputs: true,
                profile_deadline_factor: Some(8.0),
                ..RuntimeConfig::default()
            },
        );
        rt.add_kernels(&w.signature, w.variants(Target::Cpu).to_vec());
        let mut args = w.fresh_args();
        let report = rt
            .launch(
                &w.signature,
                &mut args,
                w.total_units,
                &LaunchOptions::new(),
            )
            .unwrap();
        let bits: Vec<u32> = args
            .f32(spmv_csr::arg::Y)
            .unwrap()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        // The plan must actually have fired, or this test proves nothing.
        assert!(!report.faults.is_clean(), "{threads} threads: plan inert");
        assert!(report.faults.retries >= 1, "{threads} threads: no retry");
        (report, bits)
    };
    let baseline = faulted(1);
    for threads in [2usize, 8] {
        let (report, bits) = faulted(threads);
        assert_eq!(report, baseline.0, "{threads} threads: report diverged");
        assert_eq!(bits, baseline.1, "{threads} threads: output diverged");
    }
    // And a healthy run of the same workload produces the same bits: the
    // degradation ladder preserved output exactness.
    let healthy = run(Box::new(CpuDevice::new(CpuConfig::default())), Target::Cpu);
    assert_eq!(baseline.1, healthy.1, "degraded output diverged");
}

/// Cooperative preemption is part of the determinism contract: with the
/// budget subsystem armed (`profile_deadline_factor`) and a hang on a
/// *later* variant — so earlier healthy measurements have already set the
/// budget baseline when the hung variant profiles — the preemption point
/// is a priced-cycle watermark, and the whole run (preemption counters,
/// report, output bits) is identical at 1, 2 and 8 worker threads.
#[test]
fn budget_preemption_is_bit_identical_across_worker_threads() {
    let w = workload();
    let names: Vec<String> = w
        .variants(Target::Cpu)
        .iter()
        .map(|v| v.name().to_owned())
        .collect();
    assert!(names.len() >= 3, "case IV grid has at least 3 CPU variants");
    let hung = names[2].clone();
    let factor = 8.0;
    let budgeted = |threads: usize| {
        let mut dev = CpuDevice::new(CpuConfig {
            threads,
            ..CpuConfig::default()
        });
        dev.set_fault_plan(Some(
            FaultPlan::new(7).with(FaultRule::new(&hung, FaultKind::Hang(64))),
        ));
        let mut rt = Runtime::with_config(
            Box::new(dev),
            RuntimeConfig {
                profile_threshold_groups: 16,
                profile_deadline_factor: Some(factor),
                ..RuntimeConfig::default()
            },
        );
        rt.add_kernels(&w.signature, w.variants(Target::Cpu).to_vec());
        let mut args = w.fresh_args();
        let report = rt
            .launch(
                &w.signature,
                &mut args,
                w.total_units,
                &LaunchOptions::new(),
            )
            .unwrap();
        let bits: Vec<u32> = args
            .f32(spmv_csr::arg::Y)
            .unwrap()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        // The budget must actually have fired, mid-launch: the hung
        // variant stopped executing groups instead of running to the end.
        // (Here its very first hang*64-priced group already overruns, so
        // zero groups complete — the strictest possible stop.)
        assert!(
            report.faults.preemptions >= 1,
            "{threads} threads: no preemption"
        );
        // Acceptance bound: the hang cost at most `factor` times the best
        // measurement available when its budget was derived (a variant
        // profiled before it).
        let baseline = report
            .measurements
            .iter()
            .filter(|m| m.variant.0 < 2)
            .map(|m| m.measured)
            .min()
            .expect("earlier variants measured");
        let bound = Cycles::from_f64(baseline.as_f64() * factor);
        assert!(
            report.faults.preempted_cycles <= bound,
            "{threads} threads: preempted {} > bound {bound}",
            report.faults.preempted_cycles
        );
        (report, bits)
    };
    let baseline = budgeted(1);
    for threads in [2usize, 8] {
        let (report, bits) = budgeted(threads);
        assert_eq!(report, baseline.0, "{threads} threads: report diverged");
        assert_eq!(bits, baseline.1, "{threads} threads: output diverged");
    }
    // Exactness survives the preemption: the degraded output equals the
    // healthy run bit for bit.
    let healthy = run(Box::new(CpuDevice::new(CpuConfig::default())), Target::Cpu);
    assert_eq!(baseline.1, healthy.1, "preempted run's output diverged");
}

/// `Device::reset` replays budgeted runs too: the same preemption at the
/// same priced cycle, the same report.
#[test]
fn reset_replays_the_same_preemption() {
    let w = workload();
    let names: Vec<String> = w
        .variants(Target::Cpu)
        .iter()
        .map(|v| v.name().to_owned())
        .collect();
    let mut dev = CpuDevice::new(CpuConfig::default());
    dev.set_fault_plan(Some(
        FaultPlan::new(7).with(FaultRule::new(&names[2], FaultKind::Hang(64))),
    ));
    let mut rt = Runtime::with_config(
        Box::new(dev),
        RuntimeConfig {
            profile_threshold_groups: 16,
            profile_deadline_factor: Some(8.0),
            ..RuntimeConfig::default()
        },
    );
    rt.add_kernels(&w.signature, w.variants(Target::Cpu).to_vec());
    let mut args = w.fresh_args();
    let r1 = rt
        .launch(
            &w.signature,
            &mut args,
            w.total_units,
            &LaunchOptions::new(),
        )
        .unwrap();
    assert!(r1.faults.preemptions >= 1, "plan inert");
    rt.reset();
    let mut args = w.fresh_args();
    let r2 = rt
        .launch(
            &w.signature,
            &mut args,
            w.total_units,
            &LaunchOptions::new(),
        )
        .unwrap();
    assert_eq!(r1, r2);
}

#[test]
fn device_reset_replays_the_same_schedule() {
    let w = workload();
    let mut rt = Runtime::with_config(
        Box::new(CpuDevice::new(CpuConfig::default())),
        RuntimeConfig {
            profile_threshold_groups: 16,
            ..RuntimeConfig::default()
        },
    );
    rt.add_kernels(&w.signature, w.variants(Target::Cpu).to_vec());
    let mut args = w.fresh_args();
    let r1 = rt
        .launch(
            &w.signature,
            &mut args,
            w.total_units,
            &LaunchOptions::new(),
        )
        .unwrap();
    rt.reset();
    let mut args = w.fresh_args();
    let r2 = rt
        .launch(
            &w.signature,
            &mut args,
            w.total_units,
            &LaunchOptions::new(),
        )
        .unwrap();
    assert_eq!(r1, r2);
}
