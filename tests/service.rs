//! Concurrency conformance suite for the multi-tenant [`LaunchService`].
//!
//! The service's contract (DESIGN.md §4.16) is that sharing changes
//! *throughput*, never *results*: every `(tenant, signature)` stream's
//! selection digest, `LaunchReport` sequence and exported trace bytes must
//! be bit-identical to the same submissions replayed serially on a plain
//! single-owner [`Runtime`]. This suite runs the full 18-workload scaled
//! suite for two tenants through the service at 1, 2 and 8 client
//! threads — healthy and under a deterministic fault-injection plan — and
//! diffs every stream against the serial baseline. It also pins the typed
//! admission-control behaviour: `Busy` on a full shard queue (with the
//! buffers handed back for retry) and `Rejected` for unknown signatures
//! and post-shutdown submissions.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use dysel::core::{
    DyselError, LaunchOptions, LaunchReport, LaunchService, RejectReason, Runtime, RuntimeConfig,
    ServiceConfig, SubmitError, TenantId,
};
use dysel::device::{CpuConfig, CpuDevice, Device, FaultKind, FaultPlan, FaultRule};
use dysel::kernel::{Args, Buffer, KernelIr, Space, Variant, VariantMeta};
use dysel::obs::{jsonl, EventSink};
use dysel::workloads::{
    cutcp, histogram, kmeans, particlefilter, sgemm, spmv_csr, spmv_ell, spmv_jds, stencil,
    CsrMatrix, JdsMatrix, Target, Workload,
};

const SEED: u64 = 7;
const TENANTS: u32 = 2;
const ROUNDS: usize = 2;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fold(digest: &mut u64, bytes: &[u8]) {
    for b in bytes.iter().chain(&[0u8]) {
        *digest ^= u64::from(*b);
        *digest = digest.wrapping_mul(FNV_PRIME);
    }
}

/// The full workload suite at differential-test scale, every family
/// represented (same inputs as `tests/pricing_diff.rs`).
fn suite() -> Vec<Workload> {
    let random = CsrMatrix::random(2048, 2048, 0.01, SEED);
    let diagonal = CsrMatrix::diagonal(4096);
    let jds = JdsMatrix::from_csr(&random);
    let shape = cutcp::Shape { n: 32, atoms: 1000 };
    vec![
        sgemm::schedules_workload(64, SEED),
        sgemm::mixed_workload(64, SEED),
        sgemm::vector_workload(64, SEED),
        spmv_csr::case4_workload("spmv-csr(random)", &random, SEED),
        spmv_csr::case4_workload("spmv-csr(diagonal)", &diagonal, SEED),
        spmv_csr::workload(
            "spmv-csr(sched-random)",
            &random,
            SEED,
            spmv_csr::cpu_schedule_variants(random.rows),
            spmv_csr::gpu_case4_variants(random.rows),
        ),
        spmv_csr::workload(
            "spmv-csr(sched-diagonal)",
            &diagonal,
            SEED,
            spmv_csr::cpu_schedule_variants(diagonal.rows),
            spmv_csr::gpu_case4_variants(diagonal.rows),
        ),
        spmv_csr::placement_workload("spmv-csr(placements)", &random, SEED),
        spmv_ell::workload("spmv-ell", &random, SEED),
        spmv_jds::workload(&jds, SEED),
        spmv_jds::vector_workload(&jds, SEED),
        stencil::workload(32, SEED),
        cutcp::workload(shape, SEED),
        cutcp::mixed_workload(shape, SEED),
        kmeans::workload(
            kmeans::Shape {
                n: 2048,
                d: 8,
                k: 4,
            },
            SEED,
        ),
        particlefilter::workload(
            particlefilter::Shape {
                particles: 2048,
                window: 16,
                frame: 1 << 14,
            },
            SEED,
        ),
        histogram::workload(
            64 * histogram::ELEMS_PER_UNIT,
            histogram::Distribution::Uniform,
            SEED,
        ),
        histogram::workload(
            64 * histogram::ELEMS_PER_UNIT,
            histogram::Distribution::Skewed,
            SEED,
        ),
    ]
}

/// Workload names collide across variant families (three "sgemm"s) and
/// the service registry is shared, so each workload registers under an
/// index-qualified signature — on the service *and* on the baseline, so
/// reports and digests stay comparable.
fn signatures(suite: &[Workload]) -> Vec<String> {
    suite
        .iter()
        .enumerate()
        .map(|(i, w)| format!("{}#{i}", w.signature))
        .collect()
}

/// A deterministic suite-wide fault plan: every third workload's second
/// CPU variant always fails to launch, driving the retry → quarantine
/// ladder on those streams (the remaining variants keep outputs exact).
fn fault_plan(suite: &[Workload]) -> FaultPlan {
    let mut plan = FaultPlan::new(5);
    for w in suite.iter().step_by(3) {
        let variants = w.variants(Target::Cpu);
        if variants.len() > 1 {
            plan = plan.with(FaultRule::new(variants[1].name(), FaultKind::LaunchError));
        }
    }
    plan
}

/// The device every lane and every baseline runtime gets: one functional
/// worker (virtual time is thread-count invariant; this just keeps an
/// 8-client matrix from oversubscribing the host) plus the fault plan.
fn factory(plan: Option<FaultPlan>) -> impl Fn() -> Box<dyn Device> + Send + Sync + Clone {
    move || {
        let mut dev = Box::new(CpuDevice::new(CpuConfig {
            threads: 1,
            ..CpuConfig::default()
        }));
        dev.set_fault_plan(plan.clone());
        dev as Box<dyn Device>
    }
}

/// What one stream produced, byte-comparable between service and serial.
#[derive(Debug, PartialEq)]
struct StreamArtifacts {
    reports: Vec<Result<LaunchReport, DyselError>>,
    digest: u64,
    trace: String,
}

type StreamMap = BTreeMap<(u32, String), StreamArtifacts>;
type ReportMap = BTreeMap<(u32, String), Vec<Result<LaunchReport, DyselError>>>;

/// Replays every stream serially on a plain single-owner [`Runtime`]:
/// fresh device, tenant-stamped config and sink — the ground truth the
/// service must reproduce bit for bit.
fn serial_baseline(suite: &[Workload], sigs: &[String], plan: Option<FaultPlan>) -> StreamMap {
    let opts = LaunchOptions::new();
    let mut out = StreamMap::new();
    for tenant in 0..TENANTS {
        for (wi, w) in suite.iter().enumerate() {
            let sink = Arc::new(EventSink::with_tenant(tenant));
            let mut rt = Runtime::with_config(
                factory(plan.clone())(),
                RuntimeConfig {
                    tenant: TenantId(tenant),
                    observe: Some(sink.clone()),
                    // Same per-lane config the service uses: addresses come
                    // from the runtime's private space, so the priced
                    // timeline is comparable bit for bit.
                    private_addrs: true,
                    ..RuntimeConfig::default()
                },
            );
            rt.add_kernels(&sigs[wi], w.variants(Target::Cpu).to_vec());
            let mut reports = Vec::new();
            let mut digest = FNV_OFFSET;
            for _ in 0..ROUNDS {
                let mut args = w.fresh_args();
                let result = rt.launch(&sigs[wi], &mut args, w.total_units, &opts);
                if let Ok(report) = &result {
                    fold(&mut digest, report.signature.as_bytes());
                    fold(&mut digest, report.selected_name.as_bytes());
                    w.verify(&args)
                        .unwrap_or_else(|e| panic!("baseline {} output wrong: {e}", w.name));
                }
                reports.push(result);
            }
            out.insert(
                (tenant, sigs[wi].clone()),
                StreamArtifacts {
                    reports,
                    digest,
                    trace: jsonl(&sink.events()),
                },
            );
        }
    }
    out
}

/// Pushes the same submissions through one shared service from `clients`
/// threads. Stream `i` is owned by client `i % clients`, so every
/// stream's submission order is well-defined; within a round each client
/// keeps all its streams in flight at once, then waits, so distinct
/// streams genuinely interleave across shards.
fn service_run(
    suite: &[Workload],
    sigs: &[String],
    plan: Option<FaultPlan>,
    clients: usize,
) -> StreamMap {
    let service = Arc::new(LaunchService::new(
        Arc::new(factory(plan)),
        ServiceConfig {
            shards: 4,
            queue_capacity: 16,
            observe: true,
            ..ServiceConfig::default()
        },
    ));
    for (sig, w) in sigs.iter().zip(suite) {
        service.register(sig, w.variants(Target::Cpu).to_vec());
    }
    let streams: Vec<(TenantId, usize)> = (0..TENANTS)
        .flat_map(|t| (0..suite.len()).map(move |wi| (TenantId(t), wi)))
        .collect();
    let recorded: Mutex<ReportMap> = Mutex::new(BTreeMap::new());
    std::thread::scope(|scope| {
        for client in 0..clients {
            let service = service.clone();
            let (recorded, streams) = (&recorded, &streams);
            scope.spawn(move || {
                let opts = LaunchOptions::new();
                let owned: Vec<(TenantId, usize)> = streams
                    .iter()
                    .skip(client)
                    .step_by(clients)
                    .copied()
                    .collect();
                for _round in 0..ROUNDS {
                    let mut tickets = Vec::new();
                    for &(tenant, wi) in &owned {
                        let w = &suite[wi];
                        let mut args = w.fresh_args();
                        let ticket = loop {
                            match service.submit(tenant, &sigs[wi], args, w.total_units, &opts) {
                                Ok(t) => break t,
                                Err(SubmitError::Busy { args: back, .. }) => {
                                    args = back;
                                    std::thread::yield_now();
                                }
                                Err(rejected) => panic!("rejected: {rejected}"),
                            }
                        };
                        tickets.push((tenant, wi, ticket));
                    }
                    for (tenant, wi, ticket) in tickets {
                        let (out_args, result) = ticket.wait();
                        if result.is_ok() {
                            suite[wi].verify(&out_args).unwrap_or_else(|e| {
                                panic!("service {} output wrong: {e}", suite[wi].name)
                            });
                        }
                        recorded
                            .lock()
                            .unwrap()
                            .entry((tenant.0, sigs[wi].clone()))
                            .or_default()
                            .push(result);
                    }
                }
            });
        }
    });
    let mut out = StreamMap::new();
    for ((tenant, sig), reports) in recorded.into_inner().unwrap() {
        let digest = service
            .stream_digest(TenantId(tenant), &sig)
            .expect("stream launched");
        let trace = jsonl(&service.stream_events(TenantId(tenant), &sig));
        out.insert(
            (tenant, sig),
            StreamArtifacts {
                reports,
                digest,
                trace,
            },
        );
    }
    out
}

/// Diffs every stream between the service run and the serial baseline,
/// with a message that names the first diverging stream.
fn assert_conformant(service: &StreamMap, baseline: &StreamMap, label: &str) {
    assert_eq!(
        service.keys().collect::<Vec<_>>(),
        baseline.keys().collect::<Vec<_>>(),
        "{label}: stream sets differ"
    );
    for (key, got) in service {
        let want = &baseline[key];
        assert_eq!(
            got.digest, want.digest,
            "{label}: selection digest diverged on stream {key:?}"
        );
        assert_eq!(
            got.reports, want.reports,
            "{label}: report sequence diverged on stream {key:?}"
        );
        assert_eq!(
            got.trace, want.trace,
            "{label}: exported trace bytes diverged on stream {key:?}"
        );
    }
}

#[test]
fn concurrent_submission_is_bit_identical_to_serial_replay() {
    let suite = suite();
    let sigs = signatures(&suite);
    let baseline = serial_baseline(&suite, &sigs, None);
    for clients in [1, 2, 8] {
        let got = service_run(&suite, &sigs, None, clients);
        assert_conformant(&got, &baseline, &format!("healthy, {clients} clients"));
    }
}

#[test]
fn concurrent_submission_under_faults_is_bit_identical_to_serial_replay() {
    let suite = suite();
    let sigs = signatures(&suite);
    let plan = fault_plan(&suite);
    let baseline = serial_baseline(&suite, &sigs, Some(plan.clone()));
    // The plan must actually bite, or this test silently degrades into
    // the healthy one.
    let degraded = baseline
        .values()
        .flat_map(|s| &s.reports)
        .filter(|r| r.as_ref().is_ok_and(|rep| !rep.faults.is_clean()))
        .count();
    assert!(degraded > 0, "fault plan injected nothing");
    for clients in [1, 2, 8] {
        let got = service_run(&suite, &sigs, Some(plan.clone()), clients);
        assert_conformant(&got, &baseline, &format!("faulted, {clients} clients"));
    }
}

/// A single-variant kernel that blocks until `gate` opens, flagging
/// `entered` when the shard worker actually starts executing it.
fn gated_variant(gate: Arc<AtomicBool>, entered: Arc<AtomicBool>) -> Variant {
    Variant::from_fn(
        VariantMeta::new("gated", KernelIr::regular(vec![0])),
        move |ctx, args| {
            entered.store(true, Ordering::SeqCst);
            while !gate.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            for u in ctx.units().iter() {
                args.f32_mut(0).unwrap()[u as usize] = u as f32;
            }
        },
    )
}

fn gated_args() -> Args {
    let mut args = Args::new();
    args.push(Buffer::f32("out", vec![0.0; 64], Space::Global));
    args
}

#[test]
fn full_queue_answers_busy_and_hands_buffers_back() {
    let gate = Arc::new(AtomicBool::new(false));
    let entered = Arc::new(AtomicBool::new(false));
    let service = LaunchService::with_factory(
        || Box::new(CpuDevice::new(CpuConfig::noiseless())),
        ServiceConfig {
            shards: 1,
            queue_capacity: 1,
            ..ServiceConfig::default()
        },
    );
    service.register("gated", [gated_variant(gate.clone(), entered.clone())]);
    let opts = LaunchOptions::new();
    let tenant = TenantId(1);
    // First launch: the worker picks it up and blocks on the gate.
    let first = service
        .submit(tenant, "gated", gated_args(), 64, &opts)
        .expect("first submission admitted");
    while !entered.load(Ordering::SeqCst) {
        std::thread::yield_now();
    }
    // Second fills the (capacity-1) queue; third must bounce as Busy.
    let second = service
        .submit(tenant, "gated", gated_args(), 64, &opts)
        .expect("second submission queued");
    let err = service
        .submit(tenant, "gated", gated_args(), 64, &opts)
        .expect_err("third submission must hit admission control");
    let args = match err {
        SubmitError::Busy {
            shard,
            capacity,
            args,
            ..
        } => {
            assert_eq!((shard, capacity), (0, 1));
            args
        }
        other => panic!("expected Busy, got {other}"),
    };
    assert_eq!(args.f32(0).unwrap().len(), 64, "buffers come back intact");
    // Open the gate: both admitted launches complete; the bounced one can
    // be resubmitted with the returned buffers.
    gate.store(true, Ordering::SeqCst);
    assert!(first.wait().1.is_ok());
    assert!(second.wait().1.is_ok());
    let mut args = args;
    let retried = loop {
        match service.submit(tenant, "gated", args, 64, &opts) {
            Ok(t) => break t,
            Err(SubmitError::Busy { args: back, .. }) => {
                args = back;
                std::thread::yield_now();
            }
            Err(rejected) => panic!("rejected: {rejected}"),
        }
    };
    let (out, result) = retried.wait();
    assert!(result.is_ok());
    assert_eq!(out.f32(0).unwrap()[63], 63.0);
}

#[test]
fn inadmissible_submissions_are_typed_rejections() {
    let service = LaunchService::with_factory(
        || Box::new(CpuDevice::new(CpuConfig::noiseless())),
        ServiceConfig::default(),
    );
    service.register(
        "known",
        [gated_variant(
            Arc::new(AtomicBool::new(true)),
            Arc::new(AtomicBool::new(false)),
        )],
    );
    let opts = LaunchOptions::new();
    // Unknown signature: deterministic, buffers handed back.
    let err = service
        .submit(TenantId(0), "unknown", gated_args(), 64, &opts)
        .expect_err("unknown signature must be rejected");
    match &err {
        SubmitError::Rejected { reason, .. } => {
            assert_eq!(*reason, RejectReason::UnknownSignature)
        }
        other => panic!("expected Rejected, got {other}"),
    }
    assert_eq!(err.into_args().f32(0).unwrap().len(), 64);
    // A registered signature still works...
    let (_, result) = service
        .submit(TenantId(0), "known", gated_args(), 64, &opts)
        .expect("known signature admitted")
        .wait();
    assert!(result.is_ok());
    // ...until shutdown, after which everything is ShuttingDown.
    service.shutdown();
    let err = service
        .submit(TenantId(0), "known", gated_args(), 64, &opts)
        .expect_err("post-shutdown submission must be rejected");
    assert!(matches!(
        err,
        SubmitError::Rejected {
            reason: RejectReason::ShuttingDown,
            ..
        }
    ));
}
