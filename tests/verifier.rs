//! Static-verifier acceptance: an injected `output_disjoint` mis-declaration
//! is caught statically with a stable lint code, rejected by a strict
//! runtime, downgraded to swap-based profiling by a lenient one, and — when
//! the lie is invisible to static analysis — confirmed dynamically by the
//! trace-replay sanitizer and quarantined.

use dysel::core::{
    DyselError, LaunchOptions, QuarantineReason, Runtime, RuntimeConfig, VerifyLevel,
};
use dysel::device::{CpuConfig, CpuDevice};
use dysel::kernel::{
    AccessIr, Args, Buffer, KernelIr, LoopBound, LoopIr, LoopKind, ProfilingMode, Space, Variant,
    VariantId, VariantMeta,
};
use dysel::verify::{has_deny, verify_variant, LintCode, Severity};

const N: u64 = 4096;

fn fresh_args() -> Args {
    let mut a = Args::new();
    a.push(Buffer::f32("out", vec![0.0; N as usize], Space::Global));
    a.push(Buffer::f32(
        "in",
        (0..N).map(|i| i as f32).collect(),
        Space::Global,
    ));
    a
}

/// `out[u] = 2*in[u] + 1` — honest disjoint per-unit writes, with the
/// matching IR: one work-item loop, unit-stride store into arg 0.
fn honest(name: &str, cost: u64) -> Variant {
    let ir = KernelIr::regular(vec![0])
        .with_loops(vec![LoopIr::new(
            LoopKind::WorkItem(0),
            LoopBound::Const(N),
        )])
        .with_accesses(vec![
            AccessIr::affine_load(1, vec![1]),
            AccessIr::affine_store(0, vec![1]),
        ]);
    Variant::from_fn(VariantMeta::new(name, ir), move |ctx, args| {
        for u in ctx.units().iter() {
            let x = args.f32(1).unwrap()[u as usize];
            args.f32_mut(0).unwrap()[u as usize] = 2.0 * x + 1.0;
            ctx.vector_compute(cost, 8, 8, 1);
        }
    })
}

/// The injected mis-declaration: `output_disjoint` claimed, but the store
/// site's coefficient on the work-item loop is zero — every work-item (and
/// so every work-group) hits the same element. The kernel body is honest;
/// the *metadata* lies.
fn misdeclared(name: &str) -> Variant {
    let ir = KernelIr::regular(vec![0])
        .with_loops(vec![LoopIr::new(
            LoopKind::WorkItem(0),
            LoopBound::Const(N),
        )])
        .with_accesses(vec![AccessIr::affine_store(0, vec![0])]);
    Variant::from_fn(VariantMeta::new(name, ir), move |ctx, args| {
        for u in ctx.units().iter() {
            args.f32_mut(0).unwrap()[u as usize] = 1.0;
            // Priced far out of contention: if this variant ever won
            // selection its wrong body would corrupt the final output.
            ctx.vector_compute(64, 8, 8, 1);
        }
    })
}

fn runtime(verify: VerifyLevel, sanitize: bool) -> Runtime {
    Runtime::with_config(
        Box::new(CpuDevice::new(CpuConfig::noiseless())),
        RuntimeConfig {
            profile_threshold_groups: 16,
            verify,
            sanitize_traces: sanitize,
            ..RuntimeConfig::default()
        },
    )
}

/// (a) The mis-declaration is caught statically, with the stable code.
#[test]
fn misdeclaration_is_caught_statically() {
    let diags = verify_variant(&misdeclared("liar").meta);
    assert!(has_deny(&diags), "{diags:?}");
    let dv100 = diags
        .iter()
        .find(|d| d.code == LintCode::DisjointViolated)
        .expect("DV100 finding");
    assert_eq!(dv100.code.code(), "DV100");
    assert_eq!(dv100.severity, Severity::Deny);
    assert_eq!(dv100.variant, "liar");

    // The honest twin is clean — the finding is the lie, not the shape.
    assert!(verify_variant(&honest("honest", 4).meta).is_empty());
}

/// (b) Strict mode refuses the launch with a typed error before touching
/// any user buffer.
#[test]
fn strict_mode_rejects_the_launch() {
    let mut rt = runtime(VerifyLevel::Strict, false);
    rt.add_kernels("k", [honest("honest", 4), misdeclared("liar")]);
    let mut args = fresh_args();
    let err = rt
        .launch("k", &mut args, N, &LaunchOptions::new())
        .unwrap_err();
    match err {
        DyselError::Rejected {
            signature,
            diagnostics,
        } => {
            assert_eq!(signature, "k");
            assert!(diagnostics
                .iter()
                .any(|d| d.code == LintCode::DisjointViolated));
        }
        other => panic!("expected Rejected, got {other:?}"),
    }
    // Nothing ran: the output is untouched.
    assert!(args.f32(0).unwrap().iter().all(|&y| y == 0.0));
}

/// (b') Strict registration: `try_add_kernel` refuses the variant at the
/// door, and leaves the pool unchanged.
#[test]
fn try_add_kernel_rejects_bad_metadata() {
    let mut rt = runtime(VerifyLevel::Off, false);
    assert!(matches!(
        rt.try_add_kernel("k", misdeclared("liar")),
        Err(DyselError::Rejected { .. })
    ));
    let id = rt.try_add_kernel("k", honest("honest", 4)).unwrap();
    assert_eq!(id, VariantId(0), "rejected variant must not occupy a slot");
}

/// (b'') Lenient mode downgrades the launch to swap-based profiling and
/// records the diagnostic instead of failing; the output stays exact.
#[test]
fn lenient_mode_downgrades_to_swap() {
    let mut rt = runtime(VerifyLevel::Lenient, false);
    rt.add_kernels(
        "k",
        [honest("fast", 4), honest("slow", 12), misdeclared("liar")],
    );
    let mut args = fresh_args();
    let report = rt.launch("k", &mut args, N, &LaunchOptions::new()).unwrap();
    // Without the verifier this regular set infers FullyProductive; the
    // deny finding forces the always-safe mode instead.
    assert_eq!(report.mode, Some(ProfilingMode::SwapPartial));
    let diags = rt.diagnostics("k");
    assert!(diags.iter().any(|d| d.code == LintCode::DisjointViolated));
    // Swap profiling sandboxes every candidate, so even the mis-declared
    // variant's profiling writes never reach the user buffers.
    assert_ne!(report.selected_name, "liar");
    for (i, y) in args.f32(0).unwrap().iter().enumerate() {
        assert_eq!(*y, 2.0 * i as f32 + 1.0);
    }
}

/// The arity check runs against the real argument list at launch time: an
/// out-of-range sandbox index is a deny finding.
#[test]
fn launch_checks_indices_against_real_arity() {
    let mut rt = runtime(VerifyLevel::Strict, false);
    let mut v = honest("oob", 4);
    v.meta.sandbox_args = vec![0, 7];
    rt.add_kernels("k", [v, honest("honest", 8)]);
    let err = rt
        .launch("k", &mut fresh_args(), N, &LaunchOptions::new())
        .unwrap_err();
    match err {
        DyselError::Rejected { diagnostics, .. } => {
            assert!(diagnostics
                .iter()
                .any(|d| d.code == LintCode::SandboxOutOfRange));
        }
        other => panic!("expected Rejected, got {other:?}"),
    }
}

/// (c) A lie invisible to static analysis — no access sites declared, so
/// the solver has nothing to refute — is confirmed dynamically: the
/// trace-replay sanitizer observes cross-group write overlap and the
/// variant is quarantined with `MetadataMismatch`.
#[test]
fn sanitizer_quarantines_a_dynamically_confirmed_liar() {
    // Declares disjoint outputs, declares *no* access sites, and actually
    // writes (and traces) element 0 from every work-group.
    let silent_liar = Variant::from_fn(
        VariantMeta::new("silent-liar", KernelIr::regular(vec![0])).with_wa_factor(4),
        |ctx, args| {
            args.f32_mut(0).unwrap()[0] = ctx.group() as f32;
            ctx.stream_store(0, 0, 1, 1);
        },
    );
    assert!(
        verify_variant(&silent_liar.meta).is_empty(),
        "the lie must be statically invisible for this test"
    );

    let mut rt = runtime(VerifyLevel::Lenient, true);
    rt.add_kernels("k", [honest("honest", 4), silent_liar]);
    let mut args = fresh_args();
    let report = rt.launch("k", &mut args, N, &LaunchOptions::new()).unwrap();
    assert_eq!(
        rt.quarantined("k"),
        &[(VariantId(1), QuarantineReason::MetadataMismatch)]
    );
    assert_eq!(report.selected, VariantId(0));
    for (i, y) in args.f32(0).unwrap().iter().enumerate() {
        assert_eq!(*y, 2.0 * i as f32 + 1.0);
    }

    // The sanitizer runs once per (signature, variant): a second launch
    // neither re-runs it nor re-quarantines.
    let report2 = rt.launch("k", &mut args, N, &LaunchOptions::new()).unwrap();
    assert_eq!(report2.selected, VariantId(0));
    assert_eq!(rt.quarantined("k").len(), 1);
}

/// The sanitizer leaves honest variants alone and costs nothing after the
/// first launch.
#[test]
fn sanitizer_passes_honest_variants() {
    let mut rt = runtime(VerifyLevel::Lenient, true);
    rt.add_kernels("k", [honest("a", 4), honest("b", 8)]);
    let mut args = fresh_args();
    let report = rt.launch("k", &mut args, N, &LaunchOptions::new()).unwrap();
    assert!(rt.quarantined("k").is_empty());
    assert!(report.faults.is_clean());
    for (i, y) in args.f32(0).unwrap().iter().enumerate() {
        assert_eq!(*y, 2.0 * i as f32 + 1.0);
    }
}
