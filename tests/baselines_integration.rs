//! Cross-crate integration of the static baselines against real
//! workloads and real device sweeps: where each heuristic is right, where
//! it is wrong, and that DySel recovers the losses — the logical core of
//! the paper's case studies at test scale.

use dysel::baselines::{
    exhaustive_sweep, heuristic_select, intel_vec_select, lc_select, porple_select,
};
use dysel::core::{LaunchOptions, Runtime, RuntimeConfig};
use dysel::device::{CpuConfig, CpuDevice, Device, GpuConfig, GpuDevice};
use dysel::workloads::{sgemm, spmv_csr, CsrMatrix, Target};

fn cpu() -> Box<dyn Device> {
    Box::new(CpuDevice::new(CpuConfig::noiseless()))
}

fn gpu() -> Box<dyn Device> {
    Box::new(GpuDevice::new(GpuConfig::kepler_k20c().noiseless()))
}

#[test]
fn lc_is_right_on_regular_sgemm_but_wrong_on_diagonal_spmv() {
    // sgemm: LC's stride-minimizing pick is near the oracle.
    let w = sgemm::schedules_workload(64, 5);
    let sweep = exhaustive_sweep(&w, Target::Cpu, cpu);
    let lc = lc_select(w.variants(Target::Cpu));
    let lc_rel = sweep.time_of(lc).ratio_over(sweep.best().1);
    assert!(lc_rel < 1.25, "LC on sgemm: {lc_rel}");

    // spmv on a diagonal matrix: LC's unconditional DFO loses.
    let m = CsrMatrix::diagonal(1 << 18);
    let w = spmv_csr::case4_workload("spmv", &m, 5);
    let sweep = exhaustive_sweep(&w, Target::Cpu, cpu);
    let lc = lc_select(w.variants(Target::Cpu));
    assert!(w.variants(Target::Cpu)[lc.0].name().ends_with("dfo"));
    let lc_rel = sweep.time_of(lc).ratio_over(sweep.best().1);
    assert!(
        lc_rel > 1.05,
        "LC should err on the diagonal input: {lc_rel}"
    );
}

#[test]
fn porple_and_heuristic_err_on_spmv_placements_and_dysel_recovers() {
    let m = CsrMatrix::random(8192, 8192, 0.01, 5);
    let w = spmv_csr::placement_workload("spmv", &m, 5);
    let sweep = exhaustive_sweep(&w, Target::Gpu, gpu);
    let args = w.fresh_args();

    let porple = porple_select(&GpuConfig::kepler_k20c(), w.variants(Target::Gpu), &args);
    let heuristic = heuristic_select(w.variants(Target::Gpu), &args);
    let porple_rel = sweep.time_of(porple).ratio_over(sweep.best().1);
    let heuristic_rel = sweep.time_of(heuristic).ratio_over(sweep.best().1);
    assert!(
        porple_rel > 1.02,
        "PORPLE should be suboptimal: {porple_rel}"
    );
    assert!(
        heuristic_rel > porple_rel,
        "the rule heuristic should be worse than PORPLE ({heuristic_rel} vs {porple_rel})"
    );

    // DySel lands below both.
    let mut rt = Runtime::with_config(
        gpu(),
        RuntimeConfig {
            profile_threshold_groups: 16,
            ..RuntimeConfig::default()
        },
    );
    rt.add_kernels(&w.signature, w.variants(Target::Gpu).to_vec());
    let mut wargs = w.fresh_args();
    let report = rt
        .launch(
            &w.signature,
            &mut wargs,
            w.total_units,
            &LaunchOptions::new(),
        )
        .unwrap();
    w.verify(&wargs).unwrap();
    let dysel_rel = report.total_time.ratio_over(sweep.best().1);
    assert!(
        dysel_rel < porple_rel && dysel_rel < heuristic_rel,
        "DySel {dysel_rel} vs PORPLE {porple_rel} / heuristic {heuristic_rel}"
    );
}

#[test]
fn vectorizer_heuristic_mispicks_both_fig1_cases() {
    // sgemm: regular → the heuristic's 4-way is not the best (8-way is).
    let w = sgemm::vector_workload(64, 5);
    let sweep = exhaustive_sweep(&w, Target::Cpu, cpu);
    let pick = intel_vec_select(w.variants(Target::Cpu));
    assert_ne!(pick, sweep.best().0, "heuristic should mispick on sgemm");

    // The misprediction costs real performance.
    let loss = sweep.time_of(pick).ratio_over(sweep.best().1);
    assert!(loss > 1.05, "loss {loss}");
}

#[test]
fn oracle_is_never_beaten_by_a_static_pick() {
    let m = CsrMatrix::random(4096, 4096, 0.01, 5);
    let w = spmv_csr::case4_workload("spmv", &m, 5);
    for target in [Target::Cpu, Target::Gpu] {
        let factory = match target {
            Target::Cpu => cpu as fn() -> Box<dyn Device>,
            Target::Gpu => gpu as fn() -> Box<dyn Device>,
        };
        let sweep = exhaustive_sweep(&w, target, factory);
        let lc = lc_select(w.variants(target));
        assert!(sweep.time_of(lc) >= sweep.best().1);
        assert!(sweep.time_of(lc) <= sweep.worst().1);
    }
}
