//! Observability acceptance: the structured event stream is deterministic
//! (bit-identical exports at any worker-thread count and across a device
//! reset), fault handling shows up as retry-before-quarantine in canonical
//! order, observation off is bit-identical to observation on, and the
//! three PR bugfixes hold — bounded diagnostics, warm-restore staleness
//! invalidation, and size-aware sandbox reuse (covered unit-side; the
//! metrics here cross-check the pool counters end to end).

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use dysel::core::{
    LaunchOptions, LaunchReport, QuarantineReason, Runtime, RuntimeConfig, SkipReason, VerifyLevel,
};
use dysel::device::{CpuConfig, CpuDevice, Device, FaultKind, FaultPlan, FaultRule};
use dysel::kernel::{
    AccessIr, Args, Buffer, KernelIr, LoopBound, LoopIr, LoopKind, Space, Variant, VariantMeta,
};
use dysel::obs::{chrome_trace, jsonl, names, EventSink, Stage};
use dysel::workloads::{spmv_csr, CsrMatrix, Target, Workload};

fn workload() -> Workload {
    spmv_csr::case4_workload("spmv", &CsrMatrix::random(4096, 4096, 0.01, 99), 99)
}

fn observed_runtime(device: Box<dyn Device>) -> (Runtime, Arc<EventSink>) {
    let sink = Arc::new(EventSink::new());
    let rt = Runtime::with_config(
        device,
        RuntimeConfig {
            profile_threshold_groups: 16,
            observe: Some(sink.clone()),
            ..RuntimeConfig::default()
        },
    );
    (rt, sink)
}

fn launch(rt: &mut Runtime, w: &Workload) -> LaunchReport {
    let mut args = w.fresh_args();
    rt.launch(
        &w.signature,
        &mut args,
        w.total_units,
        &LaunchOptions::new(),
    )
    .unwrap()
}

/// The golden-trace contract: both exporters produce byte-identical output
/// whether the device's functional execution ran inline or fanned out over
/// 2 or 8 worker threads — device events are emitted in the serial pricing
/// pass, so their sequence numbers are canonical.
#[test]
fn exports_are_bit_identical_across_worker_threads() {
    let w = workload();
    let exports = |threads: usize| {
        let (mut rt, sink) = observed_runtime(Box::new(CpuDevice::new(CpuConfig {
            threads,
            ..CpuConfig::default()
        })));
        rt.add_kernels(&w.signature, w.variants(Target::Cpu).to_vec());
        launch(&mut rt, &w);
        let events = sink.events();
        assert!(!events.is_empty(), "{threads} threads: no events");
        (chrome_trace(&events), jsonl(&events))
    };
    let baseline = exports(1);
    for threads in [2usize, 8] {
        assert_eq!(exports(threads), baseline, "{threads} threads diverged");
    }
}

/// `Runtime::reset` + `EventSink::clear` replays the exact same event
/// stream: the trace is a pure function of the virtual schedule.
#[test]
fn reset_and_rerun_reproduce_the_same_trace() {
    let w = workload();
    let (mut rt, sink) = observed_runtime(Box::new(CpuDevice::new(CpuConfig::default())));
    rt.add_kernels(&w.signature, w.variants(Target::Cpu).to_vec());
    launch(&mut rt, &w);
    let first = chrome_trace(&sink.events());
    sink.clear();
    rt.reset();
    launch(&mut rt, &w);
    assert_eq!(chrome_trace(&sink.events()), first);
}

/// Under an active fault plan the event stream tells the degradation story
/// in canonical order: for the erroring variant, every retry precedes its
/// quarantine, and the stream ends in a selection of a healthy variant
/// followed by the final batch. Byte-identical at any thread count.
#[test]
fn faulted_trace_reads_retry_then_quarantine_in_canonical_order() {
    let w = workload();
    let names_v: Vec<String> = w
        .variants(Target::Cpu)
        .iter()
        .map(|v| v.name().to_owned())
        .collect();
    assert!(names_v.len() >= 2);
    let broken = names_v[0].clone();
    let run = |threads: usize| {
        let mut dev = CpuDevice::new(CpuConfig {
            threads,
            ..CpuConfig::default()
        });
        dev.set_fault_plan(Some(
            FaultPlan::new(2026).with(FaultRule::new(&broken, FaultKind::LaunchError)),
        ));
        let (mut rt, sink) = observed_runtime(Box::new(dev));
        rt.add_kernels(&w.signature, w.variants(Target::Cpu).to_vec());
        let report = launch(&mut rt, &w);
        assert!(report.faults.retries >= 1, "{threads} threads: no retry");
        assert_ne!(report.selected_name, broken);
        (sink.events(), report)
    };
    let (events, report) = run(1);

    let retry_seqs: Vec<u64> = events
        .iter()
        .filter(|e| e.stage == Stage::Retry && e.variant == broken)
        .map(|e| e.seq)
        .collect();
    let quarantine_seq = events
        .iter()
        .find(|e| e.stage == Stage::Quarantine && e.variant == broken)
        .map(|e| e.seq)
        .expect("the broken variant must be quarantined");
    assert!(!retry_seqs.is_empty(), "retries must be in the stream");
    assert!(
        retry_seqs.iter().all(|&s| s < quarantine_seq),
        "every retry of {broken} must precede its quarantine: {retry_seqs:?} vs {quarantine_seq}"
    );
    let select = events
        .iter()
        .find(|e| e.stage == Stage::Select)
        .expect("a selection event");
    assert_eq!(select.variant, report.selected_name);
    assert!(select.seq > quarantine_seq);
    let batch = events
        .iter()
        .rfind(|e| e.stage == Stage::Batch)
        .expect("a final batch event");
    assert!(batch.seq > select.seq);

    for threads in [2usize, 8] {
        assert_eq!(run(threads).0, events, "{threads} threads diverged");
    }
}

/// The overhead guard at its strongest: a fully unobserved run produces the
/// exact same report and launch timeline as an observed one — observation
/// is a read-only tap, never a schedule input.
#[test]
fn observation_never_changes_reports_or_timelines() {
    let w = workload();
    let run = |observe: Option<Arc<EventSink>>| {
        let mut rt = Runtime::with_config(
            Box::new(CpuDevice::new(CpuConfig::default())),
            RuntimeConfig {
                profile_threshold_groups: 16,
                observe,
                ..RuntimeConfig::default()
            },
        );
        rt.add_kernels(&w.signature, w.variants(Target::Cpu).to_vec());
        let report = launch(&mut rt, &w);
        (report, rt.last_timeline().clone())
    };
    let plain = run(None);
    let observed = run(Some(Arc::new(EventSink::new())));
    assert_eq!(plain.0, observed.0, "report diverged under observation");
    assert_eq!(plain.1, observed.1, "timeline diverged under observation");
}

/// Metrics snapshot coverage: launch counters, profiling histograms and
/// the sandbox-pool hit/miss counters all land, and a second launch of the
/// same signature registers as a selection-cache hit.
#[test]
fn metrics_cover_launches_profiling_and_the_sandbox_pool() {
    let w = workload();
    let (mut rt, _sink) = observed_runtime(Box::new(CpuDevice::new(CpuConfig::default())));
    rt.add_kernels(&w.signature, w.variants(Target::Cpu).to_vec());
    let report = launch(&mut rt, &w);
    let m = rt.metrics_snapshot();
    assert_eq!(m.counter(names::LAUNCHES), 1);
    assert_eq!(m.counter(names::DEVICE_LAUNCHES), report.launches);
    assert!(m.counter(names::PROFILE_LAUNCHES) >= 1);
    let hist = format!(
        "{}/{}/{}",
        names::PROFILE_CYCLES,
        w.signature,
        report.selected_name
    );
    let h = m.histogram(&hist).expect("winner's profiling histogram");
    assert!(h.count() >= 1 && h.sum() > 0);

    // Steady state: the next launch reuses the cached selection.
    let mut rt = rt;
    let report2 = {
        let mut args = w.fresh_args();
        rt.launch(
            &w.signature,
            &mut args,
            w.total_units,
            &LaunchOptions::new().without_profiling(),
        )
        .unwrap()
    };
    assert_eq!(report2.skipped, Some(SkipReason::CachedSelection));
    let m2 = rt.metrics_snapshot();
    assert_eq!(m2.counter(names::CACHE_HITS), 1);
    assert_eq!(m2.counter(names::LAUNCHES), 2);
    // The render is stable plain text, one metric per line.
    let rendered = m2.render();
    assert!(rendered.contains(&format!("counter {} 2\n", names::LAUNCHES)));
}

// ---- bugfix regressions -------------------------------------------------

const N: u64 = 4096;

fn fresh_args() -> Args {
    let mut a = Args::new();
    a.push(Buffer::f32("out", vec![0.0; N as usize], Space::Global));
    a.push(Buffer::f32(
        "in",
        (0..N).map(|i| i as f32).collect(),
        Space::Global,
    ));
    a
}

/// `out[u] = 2*in[u] + 1` with honest metadata, priced at `cost`.
fn writer(name: &str, cost: u64) -> Variant {
    Variant::from_fn(
        VariantMeta::new(name, KernelIr::regular(vec![0])),
        move |ctx, args| {
            for u in ctx.units().iter() {
                let x = args.f32(1).unwrap()[u as usize];
                args.f32_mut(0).unwrap()[u as usize] = 2.0 * x + 1.0;
                ctx.vector_compute(cost, 8, 8, 1);
            }
        },
    )
}

/// Metadata that lies about disjointness — each distinctly-named variant
/// yields a distinct deny finding.
fn misdeclared(name: &str) -> Variant {
    let ir = KernelIr::regular(vec![0])
        .with_loops(vec![LoopIr::new(
            LoopKind::WorkItem(0),
            LoopBound::Const(N),
        )])
        .with_accesses(vec![AccessIr::affine_store(0, vec![0])]);
    Variant::from_fn(VariantMeta::new(name, ir), |ctx, args| {
        for u in ctx.units().iter() {
            args.f32_mut(0).unwrap()[u as usize] = 1.0;
            ctx.vector_compute(64, 8, 8, 1);
        }
    })
}

/// Regression (diagnostics growth): a lenient runtime fed a stream of
/// distinct findings for one signature keeps the first 32 and counts the
/// rest as dropped instead of growing without bound.
#[test]
fn diagnostics_are_capped_per_signature() {
    let sink = Arc::new(EventSink::new());
    let mut rt = Runtime::with_config(
        Box::new(CpuDevice::new(CpuConfig::noiseless())),
        RuntimeConfig {
            verify: VerifyLevel::Lenient,
            observe: Some(sink.clone()),
            ..RuntimeConfig::default()
        },
    );
    for i in 0..40 {
        rt.add_kernel("k", misdeclared(&format!("liar-{i:02}")));
    }
    assert_eq!(rt.diagnostics("k").len(), 32, "cap at 32 findings");
    assert_eq!(rt.diagnostics_dropped("k"), 8);
    assert_eq!(rt.metrics_snapshot().counter(names::DIAG_DROPPED), 8);
    // Re-registering an already-recorded finding is still a dedup, not a
    // drop: the counter only moves for genuinely new findings past the cap.
    rt.add_kernel("k", misdeclared("liar-00"));
    assert_eq!(rt.diagnostics_dropped("k"), 8);
}

fn temp_state(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("dysel-obs-{}-{tag}.state", std::process::id()));
    let _ = fs::remove_file(&p);
    p
}

fn warm_runtime(
    path: &Path,
    plan: Option<FaultPlan>,
    observe: Option<Arc<EventSink>>,
    variants: Vec<Variant>,
) -> Runtime {
    let mut dev = CpuDevice::new(CpuConfig::noiseless());
    dev.set_fault_plan(plan);
    let mut rt = Runtime::with_config(
        Box::new(dev),
        RuntimeConfig {
            profile_threshold_groups: 16,
            state_path: Some(path.to_path_buf()),
            observe,
            ..RuntimeConfig::default()
        },
    );
    rt.add_kernels("triple", variants);
    rt
}

fn grid() -> Vec<Variant> {
    vec![
        writer("a-slow", 12),
        writer("b-mid", 8),
        writer("c-fast", 4),
    ]
}

fn sync_launch(rt: &mut Runtime) -> LaunchReport {
    let mut args = fresh_args();
    rt.launch("triple", &mut args, N, &LaunchOptions::new())
        .unwrap()
}

/// Regression (warm-restore staleness, quarantine case): when the variant
/// a warm restart restored gets quarantined, the next launch must not keep
/// skipping profiling off the stale entry — it invalidates the warm state
/// and re-profiles against the surviving candidates.
#[test]
fn quarantine_after_warm_restore_invalidates_the_warm_entry() {
    let path = temp_state("quarantine");
    let cold = {
        let mut rt = warm_runtime(&path, None, None, grid());
        let report = sync_launch(&mut rt);
        rt.save_state().unwrap();
        report
    };
    assert_eq!(cold.selected_name, "c-fast");

    // Restart warm, with the persisted winner now permanently erroring.
    let sink = Arc::new(EventSink::new());
    let plan = FaultPlan::new(7).with(FaultRule::new("c-fast", FaultKind::LaunchError));
    let mut rt = warm_runtime(&path, Some(plan), Some(sink.clone()), grid());

    // Launch 1 restores warm, tries the persisted winner, quarantines it
    // and falls back — still a skip launch.
    let r1 = sync_launch(&mut rt);
    assert_eq!(r1.skipped, Some(SkipReason::CachedSelection));
    assert_ne!(r1.selected_name, "c-fast");
    assert!(rt
        .quarantined("triple")
        .iter()
        .any(|(_, why)| *why == QuarantineReason::LaunchFailed));

    // Launch 2 must notice the stale warm entry and go back to profiling.
    let r2 = sync_launch(&mut rt);
    assert!(r2.profiled(), "stale warm entry must force re-profiling");
    assert_eq!(r2.selected_name, "b-mid");
    let m = rt.metrics_snapshot();
    assert_eq!(m.counter(names::WARM_INVALIDATIONS), 1);
    assert_eq!(
        sink.events()
            .iter()
            .filter(|e| e.stage == Stage::WarmInvalidate)
            .count(),
        1
    );
    let _ = fs::remove_file(&path);
}

/// Regression (warm-restore staleness, variant-count case): a state file
/// recorded against K variants must not warm-skip a process that
/// registered a different K — the selection may not even mean the same
/// kernel any more.
#[test]
fn changed_variant_count_invalidates_the_warm_entry() {
    let path = temp_state("count");
    {
        let mut rt = warm_runtime(&path, None, None, grid());
        sync_launch(&mut rt);
        rt.save_state().unwrap();
    }
    // Same signature, four variants now — including a faster one.
    let sink = Arc::new(EventSink::new());
    let mut variants = grid();
    variants.push(writer("d-faster", 2));
    let mut rt = warm_runtime(&path, None, Some(sink.clone()), variants);
    let report = sync_launch(&mut rt);
    assert!(report.profiled(), "changed variant count must re-profile");
    assert_eq!(report.selected_name, "d-faster");
    assert_eq!(rt.metrics_snapshot().counter(names::WARM_INVALIDATIONS), 1);
    let _ = fs::remove_file(&path);
}

/// The unchanged-K warm restart still skips profiling (the staleness audit
/// must not over-invalidate) and now announces itself in the stream.
#[test]
fn healthy_warm_restart_still_skips_and_emits_warm_skip() {
    let path = temp_state("healthy");
    let cold = {
        let mut rt = warm_runtime(&path, None, None, grid());
        let report = sync_launch(&mut rt);
        rt.save_state().unwrap();
        report
    };
    let sink = Arc::new(EventSink::new());
    let mut rt = warm_runtime(&path, None, Some(sink.clone()), grid());
    let warm = sync_launch(&mut rt);
    assert!(!warm.profiled());
    assert_eq!(warm.selected_name, cold.selected_name);
    let m = rt.metrics_snapshot();
    assert_eq!(m.counter(names::WARM_SKIPS), 1);
    assert_eq!(m.counter(names::WARM_INVALIDATIONS), 0);
    let skip = sink
        .events()
        .iter()
        .find(|e| e.stage == Stage::WarmSkip)
        .cloned()
        .expect("a warm-skip event");
    assert_eq!(skip.variant, cold.selected_name);
    let _ = fs::remove_file(&path);
}

// ---- service fault-containment observability ----------------------------

/// Every containment mechanism leaves a deterministic trail: lane panics,
/// breaker open → half-open → close, deadline expiries, worker restarts
/// and journal compactions each bump their counter *and* emit a
/// service-level event (kept apart from lane traces, which must stay
/// bit-identical to serial replay).
#[test]
fn service_containment_counters_and_events_are_complete() {
    use std::sync::atomic::AtomicBool;
    use std::time::{Duration, Instant};

    use dysel::core::{
        BreakerConfig, ChaosAction, ChaosPlan, ChaosRule, DyselError, LaunchService, ServiceConfig,
        TenantId,
    };

    let state = temp_state("containment");
    // Panics once, then behaves: drives open -> half-open -> close.
    let armed = Arc::new(AtomicBool::new(true));
    let flaky = {
        let armed = armed.clone();
        Variant::from_fn(
            VariantMeta::new("flaky", KernelIr::regular(vec![0])),
            move |ctx, args| {
                if armed.swap(false, std::sync::atomic::Ordering::SeqCst) {
                    panic!("observability kaboom");
                }
                for u in ctx.units().iter() {
                    let x = args.f32(1).unwrap()[u as usize];
                    args.f32_mut(0).unwrap()[u as usize] = 2.0 * x + 1.0;
                    ctx.vector_compute(4, 8, 8, 1);
                }
            },
        )
    };
    let service = LaunchService::with_factory(
        || {
            Box::new(CpuDevice::new(CpuConfig {
                threads: 1,
                ..CpuConfig::noiseless()
            }))
        },
        ServiceConfig {
            shards: 1,
            observe: true,
            state_path: Some(state.clone()),
            breaker: BreakerConfig {
                cooldown: Duration::ZERO,
                ..BreakerConfig::default()
            },
            restart_backoff: Duration::from_millis(1),
            chaos: Some(
                ChaosPlan::new(9).with(ChaosRule::new("doomed", ChaosAction::Kill).window(0, 1)),
            ),
            ..ServiceConfig::default()
        },
    );
    service.register("flaky", [flaky]);
    service.register("steady", grid());
    service.register("doomed", grid());
    let opts = LaunchOptions::new();
    let tenant = TenantId(3);
    // Lane panic: contained, typed, breaker tripped.
    let (_, r) = service
        .submit(tenant, "flaky", fresh_args(), N, &opts)
        .unwrap()
        .wait();
    assert!(matches!(r, Err(DyselError::LanePanicked { .. })));
    // Zero cooldown: the next submission is the half-open probe; the
    // now-disarmed variant succeeds and the breaker closes.
    let (_, r) = service
        .submit(tenant, "flaky", fresh_args(), N, &opts)
        .unwrap()
        .wait();
    assert!(r.is_ok(), "half-open probe must be admitted and succeed");
    // An already-expired deadline resolves typed without launching.
    let (_, r) = service
        .submit_with_deadline(tenant, "steady", fresh_args(), N, &opts, Instant::now())
        .unwrap()
        .wait();
    assert!(matches!(r, Err(DyselError::DeadlineExpired { .. })));
    // The chaos kill fells the shard worker mid-job; the ticket resolves
    // typed and the supervisor restarts the worker for the retry.
    let (_, r) = service
        .submit(tenant, "doomed", fresh_args(), N, &opts)
        .unwrap()
        .wait();
    assert!(matches!(r, Err(DyselError::WorkerDied { .. })));
    let (_, r) = service
        .submit(tenant, "doomed", fresh_args(), N, &opts)
        .unwrap()
        .wait();
    assert!(r.is_ok(), "the restarted worker serves the stream");
    // Checkpoint: journal absorbed into the v4 state file.
    service.save_state().unwrap();
    let m = service.metrics();
    assert_eq!(m.counter(names::SERVICE_LANE_PANICS), 1);
    assert_eq!(m.counter(names::SERVICE_BREAKER_OPENS), 1);
    assert_eq!(m.counter(names::SERVICE_BREAKER_HALF_OPENS), 1);
    assert_eq!(m.counter(names::SERVICE_BREAKER_CLOSES), 1);
    assert_eq!(m.counter(names::SERVICE_DEADLINE_EXPIRIES), 1);
    assert!(m.counter(names::SERVICE_WORKER_RESTARTS) >= 1);
    assert!(
        m.counter(names::SERVICE_JOURNAL_APPENDS) >= 2,
        "flaky and doomed selections must hit the journal"
    );
    assert_eq!(m.counter(names::SERVICE_JOURNAL_COMPACTIONS), 1);
    let stages: Vec<Stage> = service.service_events().iter().map(|e| e.stage).collect();
    for want in [
        Stage::LanePanic,
        Stage::BreakerOpen,
        Stage::BreakerHalfOpen,
        Stage::BreakerClose,
        Stage::DeadlineExpire,
        Stage::WorkerRestart,
        Stage::JournalCompact,
    ] {
        assert!(
            stages.contains(&want),
            "missing service event stage {want:?} in {stages:?}"
        );
    }
    drop(service);
    let _ = fs::remove_file(&state);
    let _ = fs::remove_file(dysel::core::journal_path(&state));
}
