//! Failure-mode matrix: every fault class, under every profiling mode and
//! orchestration, must leave the runtime with (a) a final output that is
//! bit-identical to the all-healthy run, (b) the misbehaving variant
//! quarantined and never selected, and (c) report counters that match the
//! plan's injection log.
//!
//! The three candidates compute the SAME function (`out[u] = 2*in[u] + 1`)
//! at different priced costs, so any selection produces the same bits and
//! repairs are exact by construction:
//!
//! * variant 0 `a-slow` — slowest (and the hybrid live-slice writer),
//! * variant 1 `b-mid`  — middle,
//! * variant 2 `c-fast` — fastest (the healthy winner).

use dysel::core::{
    DyselError, LaunchOptions, LaunchReport, QuarantineReason, Runtime, RuntimeConfig,
};
use dysel::device::{CpuConfig, CpuDevice, Device, FaultKind, FaultPlan, FaultRule};
use dysel::kernel::{
    Args, Buffer, KernelIr, Orchestration, ProfilingMode, Space, Variant, VariantId, VariantMeta,
};

const N: u64 = 4096;

/// `out[u] = 2*in[u] + 1`, priced at `cost` vector iterations per unit.
fn writer(name: &str, cost: u64) -> Variant {
    Variant::from_fn(
        VariantMeta::new(name, KernelIr::regular(vec![0])),
        move |ctx, args| {
            for u in ctx.units().iter() {
                let x = args.f32(1).unwrap()[u as usize];
                args.f32_mut(0).unwrap()[u as usize] = 2.0 * x + 1.0;
                ctx.vector_compute(cost, 8, 8, 1);
            }
        },
    )
}

fn fresh_args() -> Args {
    let mut a = Args::new();
    a.push(Buffer::f32("out", vec![0.0; N as usize], Space::Global));
    a.push(Buffer::f32(
        "in",
        (0..N).map(|i| i as f32).collect(),
        Space::Global,
    ));
    a
}

fn runtime(plan: Option<FaultPlan>) -> Runtime {
    let mut dev = CpuDevice::new(CpuConfig::noiseless());
    dev.set_fault_plan(plan);
    let mut rt = Runtime::with_config(
        Box::new(dev),
        RuntimeConfig {
            profile_threshold_groups: 16,
            validate_outputs: true,
            profile_deadline_factor: Some(8.0),
            ..RuntimeConfig::default()
        },
    );
    rt.add_kernels(
        "triple",
        [
            writer("a-slow", 12),
            writer("b-mid", 8),
            writer("c-fast", 4),
        ],
    );
    rt
}

fn launch(
    rt: &mut Runtime,
    mode: ProfilingMode,
    orch: Orchestration,
) -> (Result<LaunchReport, DyselError>, Vec<u32>) {
    let mut args = fresh_args();
    let opts = LaunchOptions::new()
        .with_mode(mode)
        .with_orchestration(orch);
    let result = rt.launch("triple", &mut args, N, &opts);
    let bits = args.f32(0).unwrap().iter().map(|v| v.to_bits()).collect();
    (result, bits)
}

const MODES: [ProfilingMode; 3] = [
    ProfilingMode::FullyProductive,
    ProfilingMode::HybridPartial,
    ProfilingMode::SwapPartial,
];
const ORCHS: [Orchestration; 2] = [Orchestration::Sync, Orchestration::Async];

/// Fault class x victim x mode x orchestration: output exact, victim
/// quarantined with the right reason, victim never selected.
#[test]
fn every_fault_class_degrades_gracefully_in_every_mode() {
    let cases: &[(&str, usize, FaultKind, QuarantineReason)] = &[
        // A permanently failing launch (retries exhausted) on the healthy
        // winner, on the hybrid live-slice writer, and on a loser.
        (
            "c-fast",
            2,
            FaultKind::LaunchError,
            QuarantineReason::LaunchFailed,
        ),
        (
            "a-slow",
            0,
            FaultKind::LaunchError,
            QuarantineReason::LaunchFailed,
        ),
        (
            "b-mid",
            1,
            FaultKind::LaunchError,
            QuarantineReason::LaunchFailed,
        ),
        // Silent corruption on the same three victims.
        (
            "c-fast",
            2,
            FaultKind::WrongOutput,
            QuarantineReason::WrongOutput,
        ),
        (
            "a-slow",
            0,
            FaultKind::WrongOutput,
            QuarantineReason::WrongOutput,
        ),
        (
            "b-mid",
            1,
            FaultKind::WrongOutput,
            QuarantineReason::WrongOutput,
        ),
        // NaN poisoning is caught by the same validation machinery.
        (
            "c-fast",
            2,
            FaultKind::Poison,
            QuarantineReason::WrongOutput,
        ),
        // A hang blows the x8 profiling deadline (x64 cost vs x3 spread).
        (
            "b-mid",
            1,
            FaultKind::Hang(64),
            QuarantineReason::DeadlineExceeded,
        ),
        (
            "c-fast",
            2,
            FaultKind::Hang(64),
            QuarantineReason::DeadlineExceeded,
        ),
    ];
    for mode in MODES {
        for orch in ORCHS {
            let (healthy, healthy_bits) = launch(&mut runtime(None), mode, orch);
            let healthy = healthy.expect("healthy launch succeeds");
            assert!(
                healthy.faults.is_clean(),
                "{mode} {orch}: healthy run degraded"
            );
            assert_eq!(
                healthy.selected,
                VariantId(2),
                "{mode} {orch}: healthy winner"
            );
            for &(victim, vi, kind, reason) in cases {
                let ctx = format!("{mode} {orch} {victim}={kind}");
                let plan = FaultPlan::new(7).with(FaultRule::new(victim, kind));
                let mut rt = runtime(Some(plan));
                let (report, bits) = launch(&mut rt, mode, orch);
                let report = report.unwrap_or_else(|e| panic!("{ctx}: launch failed: {e}"));
                // (a) the final output is bit-identical to the healthy run.
                assert_eq!(bits, healthy_bits, "{ctx}: output diverged");
                // (b) the victim is quarantined with the right reason and
                // was not selected.
                assert_ne!(report.selected.0, vi, "{ctx}: selected the victim");
                assert!(
                    rt.quarantined("triple").contains(&(VariantId(vi), reason)),
                    "{ctx}: expected ({vi}, {reason}) in {:?}",
                    rt.quarantined("triple")
                );
                assert_eq!(
                    report.faults.quarantined,
                    vec![(VariantId(vi), reason)],
                    "{ctx}: report quarantine list"
                );
                // (c) report counters agree with the plan's injection log.
                let plan = rt.device().fault_plan().expect("plan installed");
                match kind {
                    FaultKind::LaunchError => {
                        assert_eq!(
                            report.faults.launch_errors,
                            plan.injected_count(kind),
                            "{ctx}: launch errors vs injected"
                        );
                        assert!(report.faults.retries > 0, "{ctx}: no retry issued");
                    }
                    FaultKind::WrongOutput | FaultKind::Poison => {
                        assert!(plan.injected_count(kind) > 0, "{ctx}: nothing injected");
                        assert_eq!(
                            report.faults.validation_failures, 1,
                            "{ctx}: validation failures"
                        );
                    }
                    FaultKind::Hang(_) => {
                        assert!(plan.injected_count(kind) > 0, "{ctx}: nothing injected");
                        assert_eq!(
                            report.faults.deadline_discards, 1,
                            "{ctx}: deadline discards"
                        );
                    }
                }
                // A quarantined variant stays excluded: the follow-up
                // launch selects among the survivors without re-tripping.
                let (again, bits2) = launch(&mut rt, mode, orch);
                let again = again.unwrap_or_else(|e| panic!("{ctx}: relaunch failed: {e}"));
                assert_ne!(again.selected.0, vi, "{ctx}: relaunch selected the victim");
                assert_eq!(bits2, healthy_bits, "{ctx}: relaunch output diverged");
            }
        }
    }
}

/// Exact ledger for a permanent launch failure in fully-productive mode:
/// 1 initial failure + `max_launch_retries` retries, the victim's slice
/// repaired by the winner, and the fault report mirrored into the
/// runtime-wide statistics.
#[test]
fn launch_error_ledger_is_exact() {
    let plan = FaultPlan::new(7).with(FaultRule::new("b-mid", FaultKind::LaunchError));
    let mut rt = runtime(Some(plan));
    let (report, _) = launch(&mut rt, ProfilingMode::FullyProductive, Orchestration::Sync);
    let report = report.unwrap();
    let retries = RuntimeConfig::default().max_launch_retries as u64;
    assert_eq!(report.faults.launch_errors, 1 + retries);
    assert_eq!(report.faults.retries, retries);
    assert_eq!(report.faults.repaired_slices, 1);
    assert!(report.faults.repaired_units > 0);
    // 3 equal profiling slices: the victim's was repaired (so it counts
    // as wasted, not productive), the other two stayed productive.
    assert_eq!(report.wasted_units, report.faults.repaired_units);
    assert_eq!(report.productive_units, 2 * report.faults.repaired_units);
    let plan = rt.device().fault_plan().unwrap();
    assert_eq!(plan.injected_count(FaultKind::LaunchError), 1 + retries);
    assert_eq!(rt.stats().launch_errors(), 1 + retries);
    assert_eq!(rt.stats().retries(), retries);
    assert_eq!(rt.stats().quarantined_variants(), 1);
}

/// Corruption on the provisional winner: its own validation launches are
/// corrupt too, so every runner-up looks suspect — the referee pass must
/// still dethrone the winner and repair its slices with the runner-up.
#[test]
fn corrupt_winner_is_dethroned_and_repaired() {
    let plan = FaultPlan::new(7).with(FaultRule::new("c-fast", FaultKind::WrongOutput));
    let mut rt = runtime(Some(plan));
    let (report, bits) = launch(&mut rt, ProfilingMode::FullyProductive, Orchestration::Sync);
    let report = report.unwrap();
    assert_eq!(report.selected, VariantId(1), "next-fastest survivor wins");
    assert_eq!(
        rt.quarantined("triple"),
        &[(VariantId(2), QuarantineReason::WrongOutput)]
    );
    assert_eq!(report.faults.repaired_slices, 1);
    assert!(report.faults.validation_launches > 0);
    let expect: Vec<f32> = (0..N).map(|i| 2.0 * i as f32 + 1.0).collect();
    let got: Vec<f32> = bits.iter().map(|b| f32::from_bits(*b)).collect();
    assert_eq!(got, expect);
}

/// Fault injection is off by default and adds nothing to the healthy
/// path: a run on a device without a plan produces the same report and
/// bits as a run on a device with an installed-but-empty plan.
#[test]
fn empty_plan_is_free_and_identical() {
    let (r1, b1) = launch(
        &mut runtime(None),
        ProfilingMode::FullyProductive,
        Orchestration::Async,
    );
    let (r2, b2) = launch(
        &mut runtime(Some(FaultPlan::new(123))),
        ProfilingMode::FullyProductive,
        Orchestration::Async,
    );
    assert_eq!(r1.unwrap(), r2.unwrap());
    assert_eq!(b1, b2);
}
