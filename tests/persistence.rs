//! Crash-safe selection persistence: warm restarts skip micro-profiling
//! and reselect the same winner; corrupt, truncated or version-skewed
//! state files cold-start with a typed error — never a panic — and leave
//! both in-memory state and user buffers untouched.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use dysel::core::{
    DyselError, LaunchOptions, LaunchReport, LaunchService, QuarantineReason, Runtime,
    RuntimeConfig, ServiceConfig, SkipReason, StateError, TenantId,
};
use dysel::device::{CpuConfig, CpuDevice, Device, FaultKind, FaultPlan, FaultRule};
use dysel::kernel::{
    Args, Buffer, KernelIr, Orchestration, ProfilingMode, Space, Variant, VariantId, VariantMeta,
};

const N: u64 = 4096;

/// `out[u] = 2*in[u] + 1`, priced at `cost` vector iterations per unit.
fn writer(name: &str, cost: u64) -> Variant {
    Variant::from_fn(
        VariantMeta::new(name, KernelIr::regular(vec![0])),
        move |ctx, args| {
            for u in ctx.units().iter() {
                let x = args.f32(1).unwrap()[u as usize];
                args.f32_mut(0).unwrap()[u as usize] = 2.0 * x + 1.0;
                ctx.vector_compute(cost, 8, 8, 1);
            }
        },
    )
}

fn fresh_args() -> Args {
    let mut a = Args::new();
    a.push(Buffer::f32("out", vec![0.0; N as usize], Space::Global));
    a.push(Buffer::f32(
        "in",
        (0..N).map(|i| i as f32).collect(),
        Space::Global,
    ));
    a
}

/// A per-test state-file path under the OS temp dir, cleared up front.
fn temp_path(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!(
        "dysel-persistence-{}-{tag}.state",
        std::process::id()
    ));
    let _ = fs::remove_file(&p);
    p
}

fn config(path: &Path) -> RuntimeConfig {
    RuntimeConfig {
        profile_threshold_groups: 16,
        state_path: Some(path.to_path_buf()),
        ..RuntimeConfig::default()
    }
}

fn runtime(plan: Option<FaultPlan>, config: RuntimeConfig) -> Runtime {
    let mut dev = CpuDevice::new(CpuConfig::noiseless());
    dev.set_fault_plan(plan);
    let mut rt = Runtime::with_config(Box::new(dev), config);
    rt.add_kernels(
        "triple",
        [
            writer("a-slow", 12),
            writer("b-mid", 8),
            writer("c-fast", 4),
        ],
    );
    rt
}

fn fp_sync(rt: &mut Runtime, args: &mut Args) -> LaunchReport {
    let opts = LaunchOptions::new()
        .with_mode(ProfilingMode::FullyProductive)
        .with_orchestration(Orchestration::Sync);
    rt.launch("triple", args, N, &opts).unwrap()
}

fn out_bits(args: &Args) -> Vec<u32> {
    args.f32(0).unwrap().iter().map(|y| y.to_bits()).collect()
}

/// Writes a valid one-launch state file and returns its bytes plus the
/// cold run's report and output bits.
fn seeded_state(path: &Path) -> (Vec<u8>, LaunchReport, Vec<u32>) {
    let mut rt = runtime(None, config(path));
    let mut args = fresh_args();
    let report = fp_sync(&mut rt, &mut args);
    assert!(report.profiled(), "the cold run must micro-profile");
    rt.save_state().unwrap();
    (fs::read(path).unwrap(), report, out_bits(&args))
}

#[test]
fn warm_restart_skips_profiling_and_reselects_the_same_winner() {
    let path = temp_path("warm");
    let (_, cold, cold_bits) = seeded_state(&path);
    let mut rt = runtime(None, config(&path));
    assert!(rt.state_load_error().is_none());
    let mut args = fresh_args();
    let warm = fp_sync(&mut rt, &mut args);
    assert!(!warm.profiled(), "warm restarts must not micro-profile");
    assert_eq!(warm.skipped, Some(SkipReason::CachedSelection));
    assert_eq!(warm.selected, cold.selected);
    assert_eq!(warm.selected_name, cold.selected_name);
    assert_eq!(out_bits(&args), cold_bits, "warm output diverged");
    let _ = fs::remove_file(&path);
}

#[test]
fn round_trip_preserves_selections_and_quarantine_bit_for_bit() {
    let path = temp_path("roundtrip");
    // Quarantine b-mid via the budget/deadline rung, then persist.
    let plan = FaultPlan::new(3).with(FaultRule::new("b-mid", FaultKind::Hang(64)));
    let mut rt = runtime(
        Some(plan),
        RuntimeConfig {
            profile_deadline_factor: Some(8.0),
            ..config(&path)
        },
    );
    let cold = fp_sync(&mut rt, &mut fresh_args());
    assert!(cold.faults.preemptions >= 1, "the budget must have fired");
    assert_eq!(
        rt.quarantined("triple"),
        &[(VariantId(1), QuarantineReason::DeadlineExceeded)]
    );
    rt.save_state().unwrap();
    let bytes = fs::read(&path).unwrap();
    // A fresh runtime loads the identical selections and quarantine
    // reasons, and re-saving writes the identical bytes: the format is
    // canonical, so save -> load -> save is a fixed point.
    let mut rt2 = runtime(None, config(&path));
    assert!(rt2.state_load_error().is_none());
    assert_eq!(
        rt2.quarantined("triple"),
        &[(VariantId(1), QuarantineReason::DeadlineExceeded)]
    );
    let state = rt2.load_state().unwrap();
    assert_eq!(state.selections.get("triple"), Some(&cold.selected));
    rt2.save_state().unwrap();
    assert_eq!(fs::read(&path).unwrap(), bytes, "re-save diverged");
    let warm = fp_sync(&mut rt2, &mut fresh_args());
    assert_eq!(warm.selected, cold.selected);
    assert!(!warm.profiled());
    let _ = fs::remove_file(&path);
}

/// Corrupting the file in `mutate` must cold-start the runtime with the
/// expected typed error, after which a launch profiles from scratch and
/// the user buffers come out exactly as healthy.
fn corrupt_and_cold_start(
    tag: &str,
    mutate: impl FnOnce(&mut Vec<u8>),
    expect: impl Fn(&StateError) -> bool,
) {
    let path = temp_path(tag);
    let (mut bytes, cold, cold_bits) = seeded_state(&path);
    mutate(&mut bytes);
    fs::write(&path, &bytes).unwrap();
    let mut rt = runtime(None, config(&path));
    let err = rt
        .state_load_error()
        .expect("a corrupted file must surface a typed error")
        .clone();
    assert!(expect(&err), "unexpected error class: {err:?}");
    let mut args = fresh_args();
    let report = fp_sync(&mut rt, &mut args);
    assert!(report.profiled(), "cold starts must micro-profile");
    assert_eq!(report.selected, cold.selected);
    assert_eq!(out_bits(&args), cold_bits, "cold-start output diverged");
    let _ = fs::remove_file(&path);
}

#[test]
fn truncated_file_cold_starts_with_typed_error() {
    corrupt_and_cold_start(
        "truncated",
        |bytes| bytes.truncate(bytes.len() / 2),
        |e| matches!(e, StateError::Truncated { .. }),
    );
}

#[test]
fn flipped_payload_byte_is_a_checksum_mismatch() {
    corrupt_and_cold_start(
        "flipped",
        |bytes| *bytes.last_mut().unwrap() ^= 0xff,
        |e| matches!(e, StateError::ChecksumMismatch { .. }),
    );
}

#[test]
fn future_version_is_rejected_as_unsupported() {
    corrupt_and_cold_start(
        "version",
        |bytes| bytes[8..12].copy_from_slice(&99u32.to_le_bytes()),
        |e| matches!(e, StateError::UnsupportedVersion { found: 99, .. }),
    );
}

#[test]
fn garbage_magic_is_rejected_as_bad_magic() {
    corrupt_and_cold_start(
        "magic",
        |bytes| bytes[0] = b'X',
        |e| matches!(e, StateError::BadMagic { .. }),
    );
}

#[test]
fn explicit_load_failure_leaves_memory_untouched() {
    let path = temp_path("load-err");
    let mut rt = runtime(
        None,
        RuntimeConfig {
            profile_once_per_signature: true,
            ..config(&path)
        },
    );
    let cold = fp_sync(&mut rt, &mut fresh_args());
    rt.save_state().unwrap();
    // Corrupt the file *after* the runtime went warm: an explicit reload
    // must fail typed and change nothing in memory.
    let mut bytes = fs::read(&path).unwrap();
    bytes.truncate(10);
    fs::write(&path, &bytes).unwrap();
    match rt.load_state() {
        Err(DyselError::State(StateError::Truncated { .. })) => {}
        other => panic!("expected a typed truncation error, got {other:?}"),
    }
    let again = fp_sync(&mut rt, &mut fresh_args());
    assert_eq!(again.skipped, Some(SkipReason::CachedSelection));
    assert_eq!(again.selected, cold.selected);
    let _ = fs::remove_file(&path);
}

#[test]
fn save_without_a_state_path_is_a_typed_error() {
    let rt = runtime(
        None,
        RuntimeConfig {
            profile_threshold_groups: 16,
            ..RuntimeConfig::default()
        },
    );
    match rt.save_state() {
        Err(DyselError::State(StateError::NoStatePath)) => {}
        other => panic!("expected NoStatePath, got {other:?}"),
    }
}

#[test]
fn missing_file_is_a_plain_cold_start() {
    let path = temp_path("missing");
    let rt = runtime(None, config(&path));
    assert!(rt.state_load_error().is_none());
    assert!(!path.exists());
}

fn storm_service(path: &Path) -> LaunchService {
    let service = LaunchService::with_factory(
        || Box::new(CpuDevice::new(CpuConfig::noiseless())),
        ServiceConfig {
            shards: 2,
            runtime: RuntimeConfig {
                profile_threshold_groups: 16,
                ..RuntimeConfig::default()
            },
            state_path: Some(path.to_path_buf()),
            ..ServiceConfig::default()
        },
    );
    service.register(
        "triple",
        [
            writer("a-slow", 12),
            writer("b-mid", 8),
            writer("c-fast", 4),
        ],
    );
    service
}

/// The save-during-storm regression: a shared handle used to race
/// `save_state` against in-flight launches. The service snapshots through
/// its shard locks and writes atomically, so every intermediate file —
/// sampled continuously while three tenants submit from three threads —
/// must decode cleanly, and the final file must hold every tenant's
/// learned selection.
#[test]
fn service_save_during_submission_storm_never_tears() {
    let path = temp_path("storm");
    let service = Arc::new(storm_service(&path));
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let saver = {
            let service = service.clone();
            let (stop, path) = (&stop, path.as_path());
            scope.spawn(move || {
                // A throwaway runtime is the decoder: `load_state` fails
                // typed on any torn or corrupt file.
                let mut rt = runtime(None, config(path));
                let mut decoded = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    service.save_state().expect("mid-storm save failed");
                    rt.load_state().expect("mid-storm state file is torn");
                    decoded += 1;
                }
                decoded
            })
        };
        for tenant in [0u32, 1, 2] {
            let service = service.clone();
            scope.spawn(move || {
                let opts = LaunchOptions::new();
                for _ in 0..8 {
                    let mut args = fresh_args();
                    let ticket = loop {
                        match service.submit(TenantId(tenant), "triple", args, N, &opts) {
                            Ok(t) => break t,
                            Err(e) => {
                                args = e.into_args();
                                std::thread::yield_now();
                            }
                        }
                    };
                    let (out, report) = ticket.wait();
                    let report = report.expect("storm launch failed");
                    assert_eq!(report.tenant, TenantId(tenant));
                    assert_eq!(out_bits(&out)[7], (2.0f32 * 7.0 + 1.0).to_bits());
                }
            });
        }
        // Let the clients finish first, then stop the saver; the scope
        // joins the rest.
        while service.launches() < 24 {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::SeqCst);
        assert!(saver.join().unwrap() > 0, "the saver never ran");
    });
    // The final save reflects every tenant: tenant 0 in the flat maps,
    // tenants 1 and 2 in the v3 nested section — and re-saving is a
    // fixed point (the encoding is canonical).
    service.save_state().unwrap();
    let bytes = fs::read(&path).unwrap();
    let mut rt = runtime(None, config(&path));
    let state = rt.load_state().unwrap();
    let winner = service
        .cache()
        .get(&dysel::core::StreamKey::new(TenantId(0), "triple"))
        .unwrap()
        .selection
        .unwrap();
    assert_eq!(state.selections.get("triple"), Some(&winner));
    for tenant in [1u32, 2] {
        assert_eq!(
            state.tenants[&tenant].selections.get("triple"),
            Some(&winner),
            "tenant {tenant} selection missing from the nested section"
        );
    }
    service.save_state().unwrap();
    assert_eq!(fs::read(&path).unwrap(), bytes, "re-save diverged");
    let _ = fs::remove_file(&path);
}

/// A fresh service warm-restores every tenant's stream from the v3 file:
/// no launch micro-profiles again, winners match, and tenant isolation
/// survives the round trip.
#[test]
fn service_state_round_trips_all_tenants_warm() {
    let path = temp_path("service-warm");
    let opts = LaunchOptions::new();
    {
        let service = storm_service(&path);
        for tenant in [0u32, 5] {
            let (_, report) = service
                .submit(TenantId(tenant), "triple", fresh_args(), N, &opts)
                .unwrap()
                .wait();
            assert!(report.unwrap().profiled(), "cold launches micro-profile");
        }
        service.save_state().unwrap();
    }
    let service = storm_service(&path);
    assert!(service.state_load_error().is_none());
    for tenant in [0u32, 5] {
        let (_, report) = service
            .submit(TenantId(tenant), "triple", fresh_args(), N, &opts)
            .unwrap()
            .wait();
        let report = report.unwrap();
        assert!(
            !report.profiled(),
            "tenant {tenant} must warm-restore, not re-profile"
        );
        assert_eq!(report.skipped, Some(SkipReason::CachedSelection));
    }
    // A tenant the file never saw still cold-starts and profiles.
    let (_, report) = service
        .submit(TenantId(9), "triple", fresh_args(), N, &opts)
        .unwrap()
        .wait();
    assert!(report.unwrap().profiled());
    let _ = fs::remove_file(&path);
}

/// Pre-v4 state files (v1 selections-only through v3 multi-tenant) come
/// from builds without the write-ahead journal; this build refuses them
/// with a typed `UnsupportedVersion` — the runtime and the service
/// cold-start cleanly, never panic, and simply re-learn.
#[test]
fn v1_through_v3_state_files_cold_start_cleanly() {
    for old in [1u32, 2, 3] {
        let path = temp_path(&format!("old-v{old}"));
        let (bytes, ..) = seeded_state(&path);
        let mut forged = bytes.clone();
        forged[8..12].copy_from_slice(&old.to_le_bytes());
        fs::write(&path, &forged).unwrap();
        // Plain runtime: typed error, memory untouched.
        let mut rt = runtime(None, config(&path));
        match rt.load_state() {
            Err(DyselError::State(StateError::UnsupportedVersion { found, .. })) => {
                assert_eq!(found, old)
            }
            other => panic!("v{old}: expected UnsupportedVersion, got {other:?}"),
        }
        // Service: records the typed error and still serves (cold)
        // launches.
        let service = storm_service(&path);
        assert!(
            matches!(
                service.state_load_error(),
                Some(StateError::UnsupportedVersion { found, .. }) if found == old
            ),
            "v{old}: service must surface the typed load error"
        );
        let (_, report) = service
            .submit(
                TenantId(0),
                "triple",
                fresh_args(),
                N,
                &LaunchOptions::new(),
            )
            .unwrap()
            .wait();
        assert!(
            report.unwrap().profiled(),
            "v{old}: a cold start micro-profiles again"
        );
        drop(service);
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(dysel::core::journal_path(&path));
    }
}

/// `save_state` on a journaling service stamps the absorbed record count
/// into the v4 checkpoint and truncates the journal, so the next start
/// replays nothing — while an *unclean* stop before any save leaves the
/// selections recoverable from the journal alone.
#[test]
fn save_state_stamps_journal_seq_and_truncates_the_journal() {
    let path = temp_path("journal-seq");
    {
        let service = storm_service(&path);
        let opts = LaunchOptions::new();
        for tenant in [0u32, 1, 2] {
            let (_, report) = service
                .submit(TenantId(tenant), "triple", fresh_args(), N, &opts)
                .unwrap()
                .wait();
            report.expect("healthy launch");
        }
        service.save_state().unwrap();
    }
    let mut rt = runtime(None, config(&path));
    let state = rt.load_state().unwrap();
    assert_eq!(
        state.journal_seq, 3,
        "the checkpoint records the three absorbed journal appends"
    );
    // The journal was truncated with the save: a re-open replays nothing
    // and warm-restores from the checkpoint alone.
    let service = storm_service(&path);
    assert_eq!(
        service.recovery(),
        Some(dysel::core::RecoveryInfo {
            replayed: 0,
            torn: false
        })
    );
    assert!(service.state_load_error().is_none());
    drop(service);
    let _ = fs::remove_file(&path);
    let _ = fs::remove_file(dysel::core::journal_path(&path));
}
