#!/usr/bin/env bash
# End-to-end experiments-suite benchmark: runs the full deterministic suite
# at --threads 1, records per-experiment and total wall-clock seconds plus
# the selections digest as BENCH_<rev>.json, and (with --check) compares
# against the checked-in BENCH_baseline.json:
#
#   * the selections digest must match exactly — a digest drift means the
#     run is not the same computation and the timing is meaningless;
#   * total wall-clock must stay within 10% of the baseline total. A
#     timing overrun triggers ONE re-run and the faster total is used, so
#     a single noisy-neighbour window cannot fail the check by itself.
#
#   scripts/bench.sh                    # run + write BENCH_<rev>.json
#   scripts/bench.sh --check            # also fail on digest drift / >10%
#   scripts/bench.sh --check --warn-only  # report regressions, exit 0 (CI)
#
# The baseline's `history` array records the perf trajectory (entry 0 is
# the oldest); --check prints the speedup over that first entry.
set -euo pipefail
cd "$(dirname "$0")/.."

check=0
warn_only=0
for arg in "$@"; do
    case "$arg" in
        --check) check=1 ;;
        --warn-only) warn_only=1 ;;
        *)
            echo "unknown flag: $arg (known: --check --warn-only)" >&2
            exit 2
            ;;
    esac
done

baseline=BENCH_baseline.json
rev=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
out="BENCH_${rev}.json"
raw=/tmp/dysel-bench-raw.txt

cargo build --release -p dysel-bench --bin experiments -q

# Runs the suite once; sets $digest and $total.
run_suite() {
    echo "==> running the full experiments suite (--threads 1)"
    target/release/experiments --threads 1 >"$raw"
    digest=$(grep -o 'selections=[0-9a-f]*' "$raw" | cut -d= -f2)
    total=$(grep '^total: ' "$raw" | sed -E 's/total: ([0-9.]+)s/\1/')
    test -n "$digest" && test -n "$total"
}

write_json() {
    awk -v rev="$rev" -v digest="$digest" -v total="$total" '
        BEGIN { n = 0 }
        /^== / { id = $2 }
        /^[ \t]*\[[0-9.]+s\]$/ {
            line = $0
            sub(/^[ \t]*\[/, "", line)
            sub(/s\]$/, "", line)
            ids[n] = id
            secs[n] = line
            n++
        }
        END {
            printf "{\n"
            printf "  \"schema\": 1,\n"
            printf "  \"rev\": \"%s\",\n", rev
            printf "  \"threads\": 1,\n"
            printf "  \"selections_digest\": \"%s\",\n", digest
            printf "  \"total_seconds\": %s,\n", total
            printf "  \"experiments\": {\n"
            for (i = 0; i < n; i++)
                printf "    \"%s\": %s%s\n", ids[i], secs[i], (i < n - 1 ? "," : "")
            printf "  }\n"
            printf "}\n"
        }
    ' "$raw" >"$out"
    echo "    total ${total}s, selections=${digest} -> ${out}"
}

run_suite
write_json

if [ "$check" = 0 ]; then
    exit 0
fi

if [ ! -f "$baseline" ]; then
    echo "    no $baseline to check against" >&2
    exit 1
fi

base_digest=$(grep -o '"selections_digest": "[0-9a-f]*"' "$baseline" | head -1 | grep -o '[0-9a-f]*"$' | tr -d '"')
base_total=$(grep '"total_seconds":' "$baseline" | head -1 | sed -E 's/.*: ([0-9.]+),?/\1/')
oldest=$(grep '"seconds":' "$baseline" | head -1 | sed -E 's/.*"seconds": ([0-9.]+).*/\1/' || true)

within_budget() {
    awk -v t="$1" -v b="$base_total" 'BEGIN { exit !(t <= b * 1.10) }'
}

fail=0
if [ "$digest" != "$base_digest" ]; then
    echo "    FAIL: selections digest $digest != baseline $base_digest" >&2
    fail=1
elif ! within_budget "$total"; then
    echo "    over budget (${total}s vs ${base_total}s +10%); retrying once" >&2
    first=$total
    run_suite
    write_json
    if ! awk -v a="$total" -v b="$first" 'BEGIN { exit !(a < b) }'; then
        total=$first
    fi
    if ! within_budget "$total"; then
        echo "    FAIL: total ${total}s regressed >10% over baseline ${base_total}s" >&2
        fail=1
    fi
fi
if [ "$fail" = 0 ]; then
    echo "    within budget: ${total}s vs baseline ${base_total}s (+10% allowed)"
fi
if [ -n "${oldest:-}" ]; then
    awk -v t="$total" -v o="$oldest" \
        'BEGIN { printf "    trajectory: %.2fx over the oldest recorded run (%ss)\n", o / t, o }'
fi

if [ "$fail" = 1 ] && [ "$warn_only" = 1 ]; then
    echo "    (warn-only: not failing the build)"
    exit 0
fi
exit "$fail"
