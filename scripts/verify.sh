#!/usr/bin/env bash
# Tier-1 verification: offline build, full test matrix, and the
# thread-count determinism contract of the parallel executor.
#
# Everything here runs with no network access and no external crates —
# including the optional extras:
#   --proptest     also run the in-tree randomized property suites
#   --bench        also build the std-only timing benches
set -euo pipefail
cd "$(dirname "$0")/.."

run_proptest=0
run_bench=0
for arg in "$@"; do
    case "$arg" in
        --proptest) run_proptest=1 ;;
        --bench) run_bench=1 ;;
        *)
            echo "unknown flag: $arg (known: --proptest --bench)" >&2
            exit 2
            ;;
    esac
done

echo "==> offline release build"
cargo build --release --workspace

echo "==> clippy, warnings as errors (all targets: lib, tests, examples)"
cargo clippy --all-targets -- -D warnings

echo "==> full test matrix (unit + integration + end-to-end)"
cargo test --release --workspace -q

echo "==> quickstart example smoke"
cargo run --release --example quickstart -q | grep -q "output verified"
echo "    verified"

echo "==> fault-plan flag smoke (bad spec must be rejected, exit 2)"
if target/release/experiments --fault-plan "bogus spec" --list >/dev/null 2>&1; then
    echo "    --fault-plan accepted a bogus spec" >&2
    exit 1
fi
echo "    rejected"

echo "==> determinism: --threads 1 vs --threads 4 must be bit-identical"
strip_wallclock() { sed -E 's/\[[0-9.]+s\]//g; s/total: [0-9.]+s//'; }
bin=target/release/experiments
cargo build --release -p dysel-bench --bin experiments -q
"$bin" --threads 1 fig11a | strip_wallclock > /tmp/dysel-verify-t1.txt
"$bin" --threads 4 fig11a | strip_wallclock > /tmp/dysel-verify-t4.txt
grep -q "fig11a" /tmp/dysel-verify-t1.txt  # guard against an empty run
diff /tmp/dysel-verify-t1.txt /tmp/dysel-verify-t4.txt
echo "    identical"

if [ "$run_proptest" = 1 ]; then
    echo "==> property suites (--features proptest)"
    for crate in dysel-kernel dysel-device dysel-analysis dysel-core dysel-workloads; do
        cargo test --release -p "$crate" --features proptest -q
    done
fi

if [ "$run_bench" = 1 ]; then
    echo "==> timing benches build (--features bench-deps)"
    cargo bench -p dysel-bench --features bench-deps --no-run
fi

echo "==> OK"
