#!/usr/bin/env bash
# Tier-1 verification: offline build, full test matrix, and the
# thread-count determinism contract of the parallel executor.
#
# Everything here runs with no network access and no external crates —
# including the optional extras:
#   --proptest     also run the in-tree randomized property suites
#   --bench        also build the std-only timing benches
set -euo pipefail
cd "$(dirname "$0")/.."

run_proptest=0
run_bench=0
for arg in "$@"; do
    case "$arg" in
        --proptest) run_proptest=1 ;;
        --bench) run_bench=1 ;;
        *)
            echo "unknown flag: $arg (known: --proptest --bench)" >&2
            exit 2
            ;;
    esac
done

echo "==> offline release build"
cargo build --release --workspace

echo "==> rustfmt check"
cargo fmt --all --check

echo "==> clippy, warnings as errors (all targets: lib, tests, examples)"
cargo clippy --all-targets -- -D warnings

echo "==> full test matrix (unit + integration + end-to-end)"
cargo test --release --workspace -q

echo "==> static lint audit of the workload suite (fail on any Deny)"
cargo run --release -p dysel-bench --bin dysel-lint -q
echo "    clean"

echo "==> quickstart example smoke"
cargo run --release --example quickstart -q | grep -q "output verified"
echo "    verified"

echo "==> fault-plan flag smoke (bad spec must be rejected, exit 2)"
if target/release/experiments --fault-plan "bogus spec" --list >/dev/null 2>&1; then
    echo "    --fault-plan accepted a bogus spec" >&2
    exit 1
fi
echo "    rejected"

echo "==> determinism: --threads 1 vs --threads 4 must be bit-identical"
strip_wallclock() { sed -E 's/\[[0-9.]+s\]//g; s/total: [0-9.]+s//'; }
bin=target/release/experiments
cargo build --release -p dysel-bench --bin experiments -q
"$bin" --threads 1 fig11a | strip_wallclock > /tmp/dysel-verify-t1.txt
"$bin" --threads 4 fig11a | strip_wallclock > /tmp/dysel-verify-t4.txt
grep -q "fig11a" /tmp/dysel-verify-t1.txt  # guard against an empty run
diff /tmp/dysel-verify-t1.txt /tmp/dysel-verify-t4.txt
echo "    identical"

echo "==> trace smoke: --trace-out must write non-empty, parseable JSON"
trace=/tmp/dysel-verify-trace.json
metrics=/tmp/dysel-verify-metrics.txt
rm -f "$trace" "$metrics"
"$bin" --threads 1 --trace-out "$trace" --metrics-out "$metrics" fig11a \
    | strip_wallclock | grep -v "^trace: \|^metrics " > /tmp/dysel-verify-obs.txt
test -s "$trace" && test -s "$metrics"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$trace" <<'PY'
import json, sys
events = json.load(open(sys.argv[1]))["traceEvents"]
assert events, "trace must contain events"
assert all("ph" in e and "ts" in e and "pid" in e for e in events)
PY
else
    grep -q '"traceEvents"' "$trace" && grep -q '"ph"' "$trace"
fi
grep -q "^counter dysel_launches_total " "$metrics"
echo "    $(grep -c '"ph"' "$trace") event line(s), metrics present"

echo "==> overhead guard: observation must not change results"
# The observed fig11a run's output (modulo wall-clock and the two export
# notice lines) must equal the unobserved --threads 1 run byte for byte:
# same figures, same selection digest, same fault counters.
diff /tmp/dysel-verify-t1.txt /tmp/dysel-verify-obs.txt
echo "    identical"

echo "==> warm restart: second --state-file run must skip all profiling"
state=/tmp/dysel-verify-state.bin
rm -f "$state"
"$bin" --state-file "$state" fig11b | grep "^run summary" > /tmp/dysel-verify-cold.txt
test -s "$state"  # the cold run must have written the state file
"$bin" --state-file "$state" fig11b | grep "^run summary" > /tmp/dysel-verify-warm.txt
grep -q " profiled=0 " /tmp/dysel-verify-warm.txt
cold_sel=$(grep -o "selections=[0-9a-f]*" /tmp/dysel-verify-cold.txt)
warm_sel=$(grep -o "selections=[0-9a-f]*" /tmp/dysel-verify-warm.txt)
test -n "$cold_sel" && test "$cold_sel" = "$warm_sel"
echo "    warm run profiled nothing, same winners ($warm_sel)"

echo "==> corrupted state file: typed warning + cold start, exit 0"
printf 'not a dysel state file' > "$state"
"$bin" --state-file "$state" fig11b > /tmp/dysel-verify-corrupt.txt 2>&1
grep -q "selection state ignored, cold start" /tmp/dysel-verify-corrupt.txt
grep "^run summary" /tmp/dysel-verify-corrupt.txt | grep -vq " profiled=0 "
rm -f "$state"
echo "    cold-started with a warning"

echo "==> features export: --features-out must write one record per variant"
features=/tmp/dysel-verify-features.jsonl
rm -f "$features"
"$bin" --features-out "$features" | grep -q "^features: 153 records"
test "$(wc -l < "$features")" -eq 153
if grep -vq '"encoded":"' "$features"; then
    echo "    a features record is missing its canonical encoding" >&2
    exit 1
fi
echo "    153 records, encodings present"

echo "==> dominance pruning: selections must be prune-invariant, cost must drop"
# Three full-suite passes: the digest (and thus every figure's winners)
# must not depend on the prune level, audit mode must record zero
# disagreements (the dominance rule is never falsified on the suite),
# and prune=on must strictly reduce profiled launches.
# The off pass doubles as the predictor smoke's training run: metrics
# collection is observe-only and must not move the digest.
metrics=/tmp/dysel-verify-metrics.txt
rm -f "$metrics"
"$bin" --prune off --metrics-out "$metrics" | grep "^run summary" > /tmp/dysel-verify-prune-off.txt
"$bin" --prune audit | grep "^run summary" > /tmp/dysel-verify-prune-audit.txt
"$bin" --prune on    | grep "^run summary" > /tmp/dysel-verify-prune-on.txt
sel_off=$(grep -o "selections=[0-9a-f]*" /tmp/dysel-verify-prune-off.txt)
sel_audit=$(grep -o "selections=[0-9a-f]*" /tmp/dysel-verify-prune-audit.txt)
sel_on=$(grep -o "selections=[0-9a-f]*" /tmp/dysel-verify-prune-on.txt)
test -n "$sel_off" && test "$sel_off" = "$sel_audit" && test "$sel_off" = "$sel_on"
grep -q " prune-disagreements=0 " /tmp/dysel-verify-prune-audit.txt
if grep -q " pruned=0 " /tmp/dysel-verify-prune-audit.txt; then
    echo "    audit flagged nothing — the dominance rule went vacuous" >&2
    exit 1
fi
prof_off=$(grep -o "profiled-variants=[0-9]*" /tmp/dysel-verify-prune-off.txt | cut -d= -f2)
prof_on=$(grep -o "profiled-variants=[0-9]*" /tmp/dysel-verify-prune-on.txt | cut -d= -f2)
test "$prof_on" -lt "$prof_off"
echo "    same winners ($sel_on), profiled variants $prof_off -> $prof_on, 0 disagreements"

echo "==> predictor: train must be byte-reproducible, shadow digest-invariant"
# Train on the features corpus + the metrics dump the previous gates
# produced; two trainings of the same inputs must be byte-identical.
model=/tmp/dysel-verify-model.bin
rm -f "$model" "$model.2"
train=target/release/dysel-train
"$train" --corpus "$features" --metrics "$metrics" --out "$model" \
    | grep -q "^trained: signatures="
"$train" --corpus "$features" --metrics "$metrics" --out "$model.2" > /dev/null
cmp "$model" "$model.2"
# A truncated corpus is a typed rejection, never a silent skip.
head -c 100 "$features" > /tmp/dysel-verify-features-trunc.jsonl
if "$train" --corpus /tmp/dysel-verify-features-trunc.jsonl \
    --metrics "$metrics" --out /dev/null 2>/dev/null; then
    echo "    trainer accepted a truncated corpus" >&2
    exit 1
fi
# Shadow mode predicts on every launch but must never steer: same
# digest as the plain run, with a non-vacuous hit/miss split.
"$bin" --predict shadow --predict-model "$model" \
    | grep "^run summary" > /tmp/dysel-verify-predict-shadow.txt
sel_shadow=$(grep -o "selections=[0-9a-f]*" /tmp/dysel-verify-predict-shadow.txt)
test -n "$sel_shadow" && test "$sel_shadow" = "$sel_off"
hits=$(grep -o "predict-hits=[0-9]*" /tmp/dysel-verify-predict-shadow.txt | cut -d= -f2)
misses=$(grep -o "predict-misses=[0-9]*" /tmp/dysel-verify-predict-shadow.txt | cut -d= -f2)
test "$hits" -gt 0 && test "$hits" -gt "$misses"
# Shadow parity must also hold per thread count (cheap subset id).
"$bin" --threads 1 fig11a | grep "^run summary" > /tmp/dysel-verify-p-base.txt
sel_base=$(grep -o "selections=[0-9a-f]*" /tmp/dysel-verify-p-base.txt)
for t in 1 2 8; do
    "$bin" --threads "$t" --predict shadow --predict-model "$model" fig11a \
        | grep "^run summary" > /tmp/dysel-verify-p-shadow-t.txt
    sel_t=$(grep -o "selections=[0-9a-f]*" /tmp/dysel-verify-p-shadow-t.txt)
    test -n "$sel_base" && test "$sel_t" = "$sel_base"
done
# On mode must skip real profiling work (the suite itself verifies
# every output, so a non-zero exit would mean a wrong selection ran),
# and its digest must be invariant across reruns.
"$bin" --predict on --predict-model "$model" \
    | grep "^run summary" > /tmp/dysel-verify-predict-on.txt
prof_pred=$(grep -o "profiled-variants=[0-9]*" /tmp/dysel-verify-predict-on.txt | cut -d= -f2)
test "$prof_pred" -lt "$prof_off"
"$bin" --predict on --predict-model "$model" fig11a \
    | grep "^run summary" > /tmp/dysel-verify-p-on1.txt
"$bin" --predict on --predict-model "$model" fig11a \
    | grep "^run summary" > /tmp/dysel-verify-p-on2.txt
diff /tmp/dysel-verify-p-on1.txt /tmp/dysel-verify-p-on2.txt
echo "    reproducible model, shadow = off ($sel_shadow, hits=$hits misses=$misses), on profiled $prof_off -> $prof_pred"

echo "==> service stress: --clients 8 digest must equal --clients 1"
"$bin" --clients 1 --tenants 2 | grep "^service summary" > /tmp/dysel-verify-svc1.txt
"$bin" --clients 8 --tenants 2 | grep "^service summary" > /tmp/dysel-verify-svc8.txt
svc1=$(grep -o "digest=[0-9a-f]*" /tmp/dysel-verify-svc1.txt)
svc8=$(grep -o "digest=[0-9a-f]*" /tmp/dysel-verify-svc8.txt)
grep -q " errors=0 " /tmp/dysel-verify-svc1.txt
grep -q " errors=0 " /tmp/dysel-verify-svc8.txt
test -n "$svc1" && test "$svc1" = "$svc8"
echo "    concurrent selections identical ($svc8)"

echo "==> chaos containment: injected faults stay typed, bad spec rejected"
if "$bin" --clients 1 --chaos-plan "bogus spec" >/dev/null 2>&1; then
    echo "    --chaos-plan accepted a bogus spec" >&2
    exit 1
fi
"$bin" --clients 8 --tenants 2 --chaos-plan "seed=7;sgemm#0@0+1=panic;spmv-ell#8@0+1=kill" \
    | grep "^service summary" > /tmp/dysel-verify-chaos.txt
# The plan must actually bite (typed failures counted, run completes).
if grep -q " errors=0 " /tmp/dysel-verify-chaos.txt; then
    echo "    chaos plan injected nothing" >&2
    exit 1
fi
echo "    $(grep -o 'errors=[0-9]*' /tmp/dysel-verify-chaos.txt) typed, run completed"

echo "==> crash recovery: SIGKILL mid-journal, warm rerun must match clean"
svc_state=/tmp/dysel-verify-svc-state.bin
rm -f "$svc_state" "$svc_state.journal"
"$bin" --clients 2 --tenants 2 --state-file "$svc_state" \
    | grep "^service summary" > /tmp/dysel-verify-crash-ref.txt
rm -f "$svc_state" "$svc_state.journal"
# Start a journaling run, SIGKILL it once the write-ahead journal holds
# records (header is 12 bytes), then rerun to completion: recovery must
# replay the journaled prefix and converge on the clean digest.
"$bin" --clients 2 --tenants 2 --state-file "$svc_state" >/dev/null 2>&1 &
crash_pid=$!
for _ in $(seq 1 200); do
    size=$(stat -c %s "$svc_state.journal" 2>/dev/null || echo 0)
    [ "$size" -gt 12 ] && break
    sleep 0.05
done
kill -9 "$crash_pid" 2>/dev/null || true
wait "$crash_pid" 2>/dev/null || true
test "$(stat -c %s "$svc_state.journal")" -gt 12  # killed with records on disk
"$bin" --clients 2 --tenants 2 --state-file "$svc_state" \
    | grep "^service summary" > /tmp/dysel-verify-crash-warm.txt
grep -q " errors=0 " /tmp/dysel-verify-crash-warm.txt
crash_ref=$(grep -o "digest=[0-9a-f]*" /tmp/dysel-verify-crash-ref.txt)
crash_warm=$(grep -o "digest=[0-9a-f]*" /tmp/dysel-verify-crash-warm.txt)
test -n "$crash_ref" && test "$crash_ref" = "$crash_warm"
rm -f "$svc_state" "$svc_state.journal"
echo "    recovered cleanly, same selections ($crash_warm)"

echo "==> perf trajectory: full experiments suite vs BENCH_baseline.json"
# Hard gate: digest drift fails immediately; a >10% wall-clock overrun is
# re-measured once (shared-VM noise) and fails only if it reproduces.
scripts/bench.sh --check

if [ "$run_proptest" = 1 ]; then
    echo "==> property suites (--features proptest)"
    for crate in dysel-kernel dysel-device dysel-analysis dysel-verify dysel-core dysel-workloads; do
        cargo test --release -p "$crate" --features proptest -q
    done
fi

if [ "$run_bench" = 1 ]; then
    echo "==> timing benches build (--features bench-deps)"
    cargo bench -p dysel-bench --features bench-deps --no-run
fi

echo "==> OK"
